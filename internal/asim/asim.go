// Package asim runs EconCast networks as concurrent goroutines: each node
// is a goroutine executing the protocol logic of internal/econcast as
// firmware would, and a broker goroutine plays the shared radio medium.
// Coordination uses a conservative virtual clock over request/reply
// channels, so runs are exactly reproducible despite the concurrency.
//
// The broker serializes the medium: it gathers each node's bid for its
// next event time (state transition or multiplier tick), grants the
// earliest, and relays channel state (carrier busy, packet completions)
// back to the affected nodes. Nodes never share memory; everything they
// learn arrives over their command channel, mirroring the structure of a
// real deployment (and of the emulated testbed built on top in
// internal/testbed).
//
// asim models clique networks, the setting of the paper's testbed; use
// internal/sim for non-clique topologies.
package asim

import (
	"errors"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
)

// Config mirrors sim.Config for clique networks.
type Config struct {
	Network *model.Network

	Mode       model.Mode
	Variant    econcast.Variant
	Sigma      float64
	Delta      float64
	Tau        float64
	PacketTime float64

	Duration float64
	Warmup   float64
	Seed     uint64

	// WarmEta and FreezeEta as in sim.Config (units of 1/Watt).
	WarmEta   []float64
	FreezeEta bool
}

// Metrics are the outputs of a goroutine-based run.
type Metrics struct {
	Window            float64
	Groupput          float64
	Anyput            float64
	PacketsSent       int
	PacketsDelivered  int
	PacketsAnyDeliver int
	Power             []float64 // per-node mean consumption over the window
	EtaFinal          []float64 // units of 1/Watt
}

// broker -> node commands.
type cmdKind int

const (
	cmdBid        cmdKind = iota // submit your next event time
	cmdFire                      // your transition fires now
	cmdTick                      // your multiplier tick fires now
	cmdPacketDone                // your packet ended; decide continue/release
	cmdStop                      // run over; report final accounting
)

type command struct {
	kind      cmdKind
	now       float64
	busy      bool // carrier state (excluding the node's own transmission)
	count     int  // successful receivers (cmdPacketDone)
	listeners int  // other active listeners (cmdBid/cmdFire; NC estimate)
	snapshot  bool // cmdStop: battery snapshot request only (warmup boundary)
}

// node -> broker replies.
type replyKind int

const (
	replyBid    replyKind = iota
	replyAction           // transition outcome: the node's new state
	replyHold             // packet decision: continue (true) or release
	replyFinal            // final accounting
)

type reply struct {
	kind replyKind
	node int

	at     float64 // replyBid: next event time (may be +Inf)
	isTick bool    // replyBid: the event is a tau tick

	state model.State // replyAction: state after the transition

	cont bool // replyHold

	battery float64 // replyFinal / snapshot
	eta     float64 // replyFinal (scaled units)
}

// Run executes the configuration and returns metrics.
func Run(cfg Config) (*Metrics, error) {
	if cfg.Network == nil {
		return nil, errors.New("asim: nil network")
	}
	if err := cfg.Network.Validate(); err != nil {
		return nil, err
	}
	if !(cfg.Sigma > 0) {
		return nil, errors.New("asim: sigma must be positive")
	}
	if !(cfg.Duration > 0) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration {
		return nil, errors.New("asim: bad duration/warmup")
	}
	if cfg.WarmEta != nil && len(cfg.WarmEta) != cfg.Network.N() {
		return nil, errors.New("asim: WarmEta length mismatch")
	}
	b := newBroker(cfg)
	b.start()
	return b.loop(), nil
}

// nodeRuntime is the goroutine-side state of one node ("firmware").
type nodeRuntime struct {
	id    int
	proto *econcast.Node
	src   *rng.Source
	cmd   <-chan command
	out   chan<- reply

	state model.State
	last  float64 // virtual time of the last energy accrual
}

// run is the node goroutine body: a strict request/reply servant of the
// broker, owning all node-local state.
func (n *nodeRuntime) run() {
	for c := range n.cmd {
		switch c.kind {
		case cmdBid:
			n.out <- n.bid(c)
		case cmdFire:
			n.advance(c.now)
			n.fire(c)
		case cmdTick:
			n.advance(c.now) // Advance applies eq. (17) at the boundary
			n.out <- reply{kind: replyAction, node: n.id, state: n.state}
		case cmdPacketDone:
			n.advance(c.now)
			est := n.proto.Estimate(c.count)
			cont := n.src.Bernoulli(n.proto.ContinueTransmitProb(est))
			if !cont {
				n.state = model.Listen
			}
			n.out <- reply{kind: replyHold, node: n.id, cont: cont}
		case cmdStop:
			n.advance(c.now)
			n.out <- reply{
				kind:    replyFinal,
				node:    n.id,
				battery: n.proto.Battery(),
				eta:     n.proto.Eta(),
			}
			if !c.snapshot {
				return
			}
		}
	}
}

func (n *nodeRuntime) advance(now float64) {
	if dt := now - n.last; dt > 0 {
		n.proto.Advance(dt, n.state)
		n.last = now
	}
}

// bid samples the node's next event given the carrier state: the earlier
// of its next state transition and its next multiplier tick.
func (n *nodeRuntime) bid(c command) reply {
	n.advance(c.now)
	tau := n.proto.Config().Tau
	// Next tick is the next tau multiple of local accrued time; the broker
	// aligns ticks by asking every node to bid from t=0, so tick times are
	// k*tau in virtual time.
	nextTick := (math.Floor(c.now/tau+1e-9) + 1) * tau
	transition := math.Inf(1)
	if n.state != model.Transmit {
		r := n.proto.Rates(!c.busy, n.proto.Estimate(c.listeners))
		var total float64
		switch n.state {
		case model.Sleep:
			total = r.SleepToListen
		case model.Listen:
			total = r.ListenToSleep + r.ListenToTransmit
		}
		if total > 0 {
			transition = c.now + n.src.Exp(total)
		}
	}
	if nextTick < transition {
		return reply{kind: replyBid, node: n.id, at: nextTick, isTick: true}
	}
	return reply{kind: replyBid, node: n.id, at: transition}
}

// fire executes the granted transition and reports the new state.
func (n *nodeRuntime) fire(c command) {
	switch n.state {
	case model.Sleep:
		n.state = model.Listen
	case model.Listen:
		r := n.proto.Rates(!c.busy, n.proto.Estimate(c.listeners))
		total := r.ListenToSleep + r.ListenToTransmit
		if total > 0 && n.src.Float64()*total < r.ListenToTransmit {
			n.state = model.Transmit
		} else {
			n.state = model.Sleep
		}
	}
	n.out <- reply{kind: replyAction, node: n.id, state: n.state}
}

// broker owns the virtual clock and the radio medium.
type broker struct {
	cfg   Config
	n     int
	nodes []*nodeRuntime
	cmds  []chan<- command
	out   <-chan reply

	now         float64
	transmitter int // -1 when idle
	listeners   []int
	pktEnd      float64
	states      []model.State
	bids        []reply

	met           Metrics
	measuring     bool
	warmupBattery []float64
	packetTime    float64
}

func newBroker(cfg Config) *broker {
	n := cfg.Network.N()
	// The broker keeps only its own end of each channel: send on cmds,
	// receive on out. The bidirectional values live just long enough here
	// to hand the opposite ends to the node runtimes.
	out := make(chan reply)
	b := &broker{
		cfg:         cfg,
		n:           n,
		nodes:       make([]*nodeRuntime, n),
		cmds:        make([]chan<- command, n),
		out:         out,
		transmitter: -1,
		states:      make([]model.State, n),
		bids:        make([]reply, n),
		packetTime:  cfg.PacketTime,
	}
	b.packetTime = model.DefaultIfZero(b.packetTime, 1e-3)
	master := rng.New(cfg.Seed)
	for i := 0; i < n; i++ {
		nd := cfg.Network.Nodes[i]
		pc := econcast.Config{
			Mode:          cfg.Mode,
			Variant:       cfg.Variant,
			Sigma:         cfg.Sigma,
			Delta:         cfg.Delta,
			Tau:           cfg.Tau,
			Budget:        nd.Budget,
			ListenPower:   nd.ListenPower,
			TransmitPower: nd.TransmitPower,
			PacketTime:    cfg.PacketTime,
		}
		if cfg.FreezeEta {
			pc.Delta = 1e-300
		}
		proto := econcast.NewNode(pc)
		if cfg.WarmEta != nil {
			p0 := math.Max(nd.ListenPower, nd.TransmitPower)
			proto.SetEta(cfg.WarmEta[i] * p0)
		}
		ch := make(chan command)
		b.cmds[i] = ch
		b.nodes[i] = &nodeRuntime{
			id:    i,
			proto: proto,
			src:   master.Split(),
			cmd:   ch,
			out:   out,
		}
	}
	return b
}

func (b *broker) start() {
	for _, n := range b.nodes {
		go n.run()
	}
}

// ask sends a command to node i and waits for its reply.
func (b *broker) ask(i int, c command) reply {
	b.cmds[i] <- c
	return <-b.out
}

func (b *broker) busyFor(i int) bool {
	return b.transmitter >= 0 && b.transmitter != i
}

// otherListeners counts listening nodes other than i, the continuous ping
// estimate the non-capture variant consumes.
func (b *broker) otherListeners(i int) int {
	count := 0
	for j := 0; j < b.n; j++ {
		if j != i && b.states[j] == model.Listen {
			count++
		}
	}
	return count
}

func (b *broker) rebid(i int) {
	b.bids[i] = b.ask(i, command{
		kind: cmdBid, now: b.now, busy: b.busyFor(i),
		listeners: b.otherListeners(i),
	})
}

func (b *broker) rebidAll() {
	for i := 0; i < b.n; i++ {
		b.rebid(i)
	}
}

// loop is the broker's main scheduling loop.
func (b *broker) loop() *Metrics {
	b.rebidAll()
	for {
		// Earliest pending event: a node bid or the packet end.
		best := -1
		bestAt := math.Inf(1)
		for i := 0; i < b.n; i++ {
			if b.states[i] == model.Transmit {
				continue // packet-driven
			}
			if b.bids[i].at < bestAt {
				bestAt = b.bids[i].at
				best = i
			}
		}
		usePacket := b.transmitter >= 0 && b.pktEnd <= bestAt
		eventAt := bestAt
		if usePacket {
			eventAt = b.pktEnd
		}
		if eventAt > b.cfg.Duration || (best < 0 && !usePacket) {
			break
		}
		b.now = eventAt
		if !b.measuring && b.now >= b.cfg.Warmup {
			b.measuring = true
			b.snapshotBatteries()
		}
		if usePacket {
			b.finishPacket()
			continue
		}
		if b.bids[best].isTick {
			b.ask(best, command{kind: cmdTick, now: b.now})
			b.rebid(best)
			continue
		}
		// Grant the transition.
		r := b.ask(best, command{
			kind: cmdFire, now: b.now, busy: b.busyFor(best),
			listeners: b.otherListeners(best),
		})
		prev := b.states[best]
		b.states[best] = r.state
		switch {
		case prev == model.Listen && r.state == model.Transmit:
			b.beginPacket(best)
		default:
			b.rebid(best)
			// The non-capture variant's rates depend on the listener count,
			// which just changed for everyone else.
			if b.cfg.Variant == econcast.NonCapture && prev != r.state {
				for j := 0; j < b.n; j++ {
					if j != best && b.states[j] == model.Listen {
						b.rebid(j)
					}
				}
			}
		}
	}
	return b.finish()
}

// beginPacket starts a hold: captures the listener set and freezes
// everyone else by rebidding them under a busy carrier.
func (b *broker) beginPacket(tx int) {
	b.transmitter = tx
	b.listeners = b.listeners[:0]
	for i := 0; i < b.n; i++ {
		if i != tx && b.states[i] == model.Listen {
			b.listeners = append(b.listeners, i) //lint:allow hotalloc reuses the slice's capacity; grows at most n times per run
		}
	}
	b.pktEnd = b.now + b.packetTime
	for i := 0; i < b.n; i++ {
		if i != tx {
			b.rebid(i)
		}
	}
}

// finishPacket completes the current packet: account deliveries, ask the
// transmitter whether it holds the channel, and unfreeze on release.
func (b *broker) finishPacket() {
	tx := b.transmitter
	success := len(b.listeners)
	if b.measuring {
		b.met.PacketsSent++
		b.met.Groupput += float64(success) * b.packetTime
		b.met.PacketsDelivered += success
		if success > 0 {
			b.met.PacketsAnyDeliver++
			b.met.Anyput += b.packetTime
		}
	}
	r := b.ask(tx, command{kind: cmdPacketDone, now: b.now, count: success})
	if r.cont {
		// Hold continues: same transmitter, recapture listeners (frozen, so
		// unchanged in a clique).
		b.pktEnd = b.now + b.packetTime
		return
	}
	b.transmitter = -1
	b.states[tx] = model.Listen
	b.rebidAll()
}

func (b *broker) snapshotBatteries() {
	b.warmupBattery = make([]float64, b.n) //lint:allow hotalloc once per run, at the warmup boundary
	for i := 0; i < b.n; i++ {
		r := b.ask(i, command{kind: cmdStop, now: b.now, snapshot: true})
		b.warmupBattery[i] = r.battery
	}
	// Snapshot rebids are unnecessary: cmdStop with snapshot does not
	// change node state, and bids remain valid.
}

func (b *broker) finish() *Metrics {
	window := b.cfg.Duration - b.cfg.Warmup
	b.met.Window = window
	b.met.Groupput /= window
	b.met.Anyput /= window
	b.met.Power = make([]float64, b.n)    //lint:allow hotalloc once per run, after the horizon
	b.met.EtaFinal = make([]float64, b.n) //lint:allow hotalloc once per run, after the horizon
	for i := 0; i < b.n; i++ {
		r := b.ask(i, command{kind: cmdStop, now: b.cfg.Duration})
		close(b.cmds[i])
		nd := b.cfg.Network.Nodes[i]
		start := 0.0
		if b.warmupBattery != nil {
			start = b.warmupBattery[i]
		}
		b.met.Power[i] = nd.Budget - (r.battery-start)/window
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		b.met.EtaFinal[i] = r.eta / p0
	}
	return &b.met
}
