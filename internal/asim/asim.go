// Package asim runs EconCast networks as concurrent goroutines: each node
// is a goroutine executing the protocol logic of internal/econcast as
// firmware would, and a broker goroutine plays the shared radio medium.
// Coordination uses a conservative virtual clock over request/reply
// channels, so runs are exactly reproducible despite the concurrency.
//
// The broker serializes the medium: it gathers each node's bid for its
// next event time (state transition or multiplier tick), grants the
// earliest, and relays channel state (carrier busy, packet completions)
// back to the affected nodes. Nodes never share memory; everything they
// learn arrives over their command channel, mirroring the structure of a
// real deployment (and of the emulated testbed built on top in
// internal/testbed).
//
// asim models clique networks, the setting of the paper's testbed; use
// internal/sim for non-clique topologies.
package asim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
)

// Config mirrors sim.Config for clique networks.
type Config struct {
	Network *model.Network

	Mode       model.Mode
	Variant    econcast.Variant
	Sigma      float64
	Delta      float64
	Tau        float64
	PacketTime float64

	Duration float64
	Warmup   float64
	Seed     uint64

	// WarmEta and FreezeEta as in sim.Config (units of 1/Watt).
	WarmEta   []float64
	FreezeEta bool

	// Faults injects the shared fault processes (see internal/faults).
	// asim realizes a crash as the death of the node's goroutine — the
	// panic-isolation path below — so restarting schedules are rejected;
	// use internal/sim for crash/restart churn.
	Faults *faults.Config

	// Watchdog bounds how long the broker waits (wall-clock) for any
	// single node to accept or answer a command before failing the run
	// with a diagnostic instead of hanging. 0 means the 30s default;
	// negative disables the watchdog. The timeout only trips on a truly
	// stuck nodeRuntime (a livelocked or blocked goroutine) — panics are
	// recovered and reported in virtual time, without waiting.
	Watchdog time.Duration

	// stall, when set, wedges one node's goroutine at a virtual time —
	// the test hook that proves the watchdog converts a stuck node into
	// an error instead of a hang.
	stall *stallSpec
}

// stallSpec wedges node `node` forever at the first command with
// virtual time >= at.
type stallSpec struct {
	node int
	at   float64
}

// defaultWatchdog is the broker's wall-clock patience per command when
// Config.Watchdog is zero.
const defaultWatchdog = 30 * time.Second

// Metrics are the outputs of a goroutine-based run.
type Metrics struct {
	Window            float64
	Groupput          float64
	Anyput            float64
	PacketsSent       int
	PacketsDelivered  int
	PacketsAnyDeliver int
	LostReceptions    int       // receptions lost to the fault layer
	Power             []float64 // per-node mean consumption over the window
	EtaFinal          []float64 // units of 1/Watt

	// Dead marks nodes whose goroutines died during the run (injected
	// crash faults or recovered panics). Dead nodes report zero Power and
	// EtaFinal; throughput covers the survivors. Nil when nobody died.
	Dead []bool `json:",omitempty"`

	// FaultTrace is the materialized fault schedule (nil without faults);
	// byte-identical to the other substrates' traces for the same fault
	// config and seed.
	FaultTrace []faults.Event `json:",omitempty"`
}

// broker -> node commands.
type cmdKind int

const (
	cmdBid        cmdKind = iota // submit your next event time
	cmdFire                      // your transition fires now
	cmdTick                      // your multiplier tick fires now
	cmdPacketDone                // your packet ended; decide continue/release
	cmdStop                      // run over; report final accounting
)

type command struct {
	kind      cmdKind
	now       float64
	busy      bool // carrier state (excluding the node's own transmission)
	count     int  // successful receivers (cmdPacketDone)
	listeners int  // other active listeners (cmdBid/cmdFire; NC estimate)
	snapshot  bool // cmdStop: battery snapshot request only (warmup boundary)
}

// node -> broker replies.
type replyKind int

const (
	replyBid    replyKind = iota
	replyAction           // transition outcome: the node's new state
	replyHold             // packet decision: continue (true) or release
	replyFinal            // final accounting
	replyDead             // the node goroutine panicked; sent by its recover
)

type reply struct {
	kind replyKind
	node int

	at     float64 // replyBid: next event time (may be +Inf)
	isTick bool    // replyBid: the event is a tau tick

	state model.State // replyAction: state after the transition

	cont bool // replyHold

	battery float64 // replyFinal / snapshot
	eta     float64 // replyFinal (scaled units)
}

// Run executes the configuration and returns metrics.
func Run(cfg Config) (*Metrics, error) {
	if cfg.Network == nil {
		return nil, errors.New("asim: nil network")
	}
	if err := cfg.Network.Validate(); err != nil {
		return nil, err
	}
	if !(cfg.Sigma > 0) {
		return nil, errors.New("asim: sigma must be positive")
	}
	if !(cfg.Duration > 0) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration {
		return nil, errors.New("asim: bad duration/warmup")
	}
	if cfg.WarmEta != nil && len(cfg.WarmEta) != cfg.Network.N() {
		return nil, errors.New("asim: WarmEta length mismatch")
	}
	flt, err := faults.Compile(cfg.Faults, cfg.Network.N(), cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if flt.HasRestart() {
		return nil, errors.New("asim: crash/restart schedules are not supported (a crash kills the node's goroutine permanently); use internal/sim for churn with restarts")
	}
	b := newBroker(cfg, flt)
	b.start()
	m := b.loop()
	if b.err != nil {
		return nil, b.err
	}
	return m, nil
}

// nodeRuntime is the goroutine-side state of one node ("firmware").
//
//lint:owner asim-node firmware state lives in the node goroutine; the broker speaks over cmd/out only
type nodeRuntime struct {
	id    int
	proto *econcast.Node
	src   *rng.Source
	cmd   <-chan command
	out   chan<- reply

	state model.State
	last  float64 // virtual time of the last energy accrual

	// Fault-layer projection (a value-type faults.NodeView derivative:
	// node goroutines never share the *faults.Set itself).
	drift   float64 // sleep-clock scale factor (1 = exact)
	crashAt float64 // virtual time of this node's crash (+Inf if none)
	stallAt float64 // test hook: wedge forever at this virtual time
}

// run is the node goroutine body: a strict request/reply servant of the
// broker, owning all node-local state. Any panic — an injected crash
// fault or a genuine firmware bug — is isolated here: the recover turns
// it into a replyDead to the broker, which removes the node from the
// network and keeps the run going over the survivors.
func (n *nodeRuntime) run() {
	defer func() { //lint:allow hotalloc one recover closure per node goroutine at spawn, not per event
		if r := recover(); r != nil {
			// The broker is blocked in ask waiting for this node's reply,
			// so the send completes immediately. (If the broker has already
			// aborted on a watchdog error it may never receive; the
			// goroutine then parks here, a bounded leak on a path that
			// already failed the run.)
			n.out <- reply{kind: replyDead, node: n.id}
		}
	}()
	for c := range n.cmd {
		if c.now >= n.stallAt {
			select {} // wedged: the watchdog test hook
		}
		if c.now >= n.crashAt {
			n.advance(n.crashAt) // the battery accrues up to the crash
			panic(fmt.Sprintf("asim: node %d crash fault at t=%.6f", n.id, n.crashAt))
		}
		switch c.kind {
		case cmdBid:
			n.out <- n.bid(c)
		case cmdFire:
			n.advance(c.now)
			n.fire(c)
		case cmdTick:
			n.advance(c.now) // Advance applies eq. (17) at the boundary
			n.out <- reply{kind: replyAction, node: n.id, state: n.state}
		case cmdPacketDone:
			n.advance(c.now)
			est := n.proto.Estimate(c.count)
			cont := n.src.Bernoulli(n.proto.ContinueTransmitProb(est))
			if !cont {
				n.state = model.Listen
			}
			n.out <- reply{kind: replyHold, node: n.id, cont: cont}
		case cmdStop:
			n.advance(c.now)
			n.out <- reply{
				kind:    replyFinal,
				node:    n.id,
				battery: n.proto.Battery(),
				eta:     n.proto.Eta(),
			}
			if !c.snapshot {
				return
			}
		}
	}
}

func (n *nodeRuntime) advance(now float64) {
	if dt := now - n.last; dt > 0 {
		n.proto.Advance(dt, n.state)
		n.last = now
	}
}

// bid samples the node's next event given the carrier state: the earlier
// of its next state transition and its next multiplier tick.
func (n *nodeRuntime) bid(c command) reply {
	n.advance(c.now)
	tau := n.proto.Config().Tau
	// Next tick is the next tau multiple of local accrued time; the broker
	// aligns ticks by asking every node to bid from t=0, so tick times are
	// k*tau in virtual time.
	nextTick := (math.Floor(c.now/tau+1e-9) + 1) * tau
	transition := math.Inf(1)
	if n.state != model.Transmit {
		r := n.proto.Rates(!c.busy, n.proto.Estimate(c.listeners))
		var total float64
		switch n.state {
		case model.Sleep:
			total = r.SleepToListen
		case model.Listen:
			total = r.ListenToSleep + r.ListenToTransmit
		}
		if total > 0 {
			dwell := n.src.Exp(total)
			if n.state == model.Sleep {
				// Sleep intervals run off the node's low-power clock, which
				// the drift fault scales (active-mode timing is accurate).
				dwell *= n.drift
			}
			transition = c.now + dwell
		}
	}
	if nextTick < transition {
		return reply{kind: replyBid, node: n.id, at: nextTick, isTick: true}
	}
	return reply{kind: replyBid, node: n.id, at: transition}
}

// fire executes the granted transition and reports the new state.
func (n *nodeRuntime) fire(c command) {
	switch n.state {
	case model.Sleep:
		n.state = model.Listen
	case model.Listen:
		r := n.proto.Rates(!c.busy, n.proto.Estimate(c.listeners))
		total := r.ListenToSleep + r.ListenToTransmit
		if total > 0 && n.src.Float64()*total < r.ListenToTransmit {
			n.state = model.Transmit
		} else {
			n.state = model.Sleep
		}
	}
	n.out <- reply{kind: replyAction, node: n.id, state: n.state}
}

// broker owns the virtual clock and the radio medium.
//
//lint:owner asim-broker the broker goroutine owns the clock and the medium
type broker struct {
	cfg   Config
	n     int
	nodes []*nodeRuntime
	cmds  []chan<- command
	out   <-chan reply

	now         float64
	transmitter int // -1 when idle
	listeners   []int
	pktEnd      float64
	states      []model.State
	bids        []reply

	// Fault machinery. flt is broker-owned (its loss streams advance on
	// DropRx); dead marks nodes whose goroutines have exited; crashAt is
	// the broker-side crash schedule, so crashes land at their exact
	// virtual times; err aborts the run with a diagnostic.
	flt     *faults.Set
	dead    []bool
	crashAt []float64
	err     error

	// Watchdog: one reusable wall-clock timer arming every channel
	// operation in ask. wd == nil disables it.
	wd        *time.Timer
	wdTimeout time.Duration

	met           Metrics
	measuring     bool
	warmupBattery []float64
	packetTime    float64
}

func newBroker(cfg Config, flt *faults.Set) *broker {
	n := cfg.Network.N()
	// The broker keeps only its own end of each channel: send on cmds,
	// receive on out. The bidirectional values live just long enough here
	// to hand the opposite ends to the node runtimes.
	out := make(chan reply)
	b := &broker{
		cfg:         cfg,
		n:           n,
		nodes:       make([]*nodeRuntime, n),
		cmds:        make([]chan<- command, n),
		out:         out,
		transmitter: -1,
		states:      make([]model.State, n),
		bids:        make([]reply, n),
		packetTime:  cfg.PacketTime,
		flt:         flt,
		dead:        make([]bool, n),
		crashAt:     make([]float64, n),
	}
	b.packetTime = model.DefaultIfZero(b.packetTime, 1e-3)
	if cfg.Watchdog >= 0 {
		b.wdTimeout = cfg.Watchdog
		if b.wdTimeout == 0 {
			b.wdTimeout = defaultWatchdog
		}
		// The watchdog measures wall-clock liveness of the node
		// goroutines, never virtual time, so it cannot perturb results:
		// it either never fires (healthy run, timer reset and drained
		// around every exchange) or fails the run outright.
		b.wd = time.NewTimer(b.wdTimeout) //lint:allow wallclock liveness watchdog only; virtual-time results never observe this timer
		if !b.wd.Stop() {
			<-b.wd.C
		}
	}
	master := rng.New(cfg.Seed)
	for i := 0; i < n; i++ {
		nd := cfg.Network.Nodes[i]
		pc := econcast.Config{
			Mode:          cfg.Mode,
			Variant:       cfg.Variant,
			Sigma:         cfg.Sigma,
			Delta:         cfg.Delta,
			Tau:           cfg.Tau,
			Budget:        nd.Budget,
			ListenPower:   nd.ListenPower,
			TransmitPower: nd.TransmitPower,
			PacketTime:    cfg.PacketTime,
		}
		if cfg.FreezeEta {
			pc.Delta = 1e-300
		}
		// Brownouts scale the node's harvest inside their windows; the
		// wrapper closes over the node's value-type view, not the Set.
		if v := flt.View(i); v.HasBrownout() {
			budget := nd.Budget
			pc.Harvest = func(t float64) float64 { return budget * v.HarvestScale(t) }
		}
		proto := econcast.NewNode(pc)
		if cfg.WarmEta != nil {
			p0 := math.Max(nd.ListenPower, nd.TransmitPower)
			proto.SetEta(cfg.WarmEta[i] * p0)
		}
		ch := make(chan command)
		b.cmds[i] = ch
		view := flt.View(i)
		b.crashAt[i] = view.CrashAt
		stallAt := math.Inf(1)
		if cfg.stall != nil && cfg.stall.node == i {
			stallAt = cfg.stall.at
		}
		b.nodes[i] = &nodeRuntime{
			id:      i,
			proto:   proto,
			src:     master.Split(),
			cmd:     ch,
			out:     out,
			drift:   view.DriftFactor,
			crashAt: view.CrashAt,
			stallAt: stallAt,
		}
	}
	return b
}

func (b *broker) start() {
	for _, n := range b.nodes {
		go n.run()
	}
}

// ask sends a command to node i and waits for its reply. It returns
// ok=false when no usable reply arrived: the node's goroutine died (a
// recovered panic, recorded via markDead) or the watchdog expired (the
// run is failed via b.err). Callers must treat ok=false as "this node is
// gone" and continue over the survivors or abort on b.err.
func (b *broker) ask(i int, c command) (reply, bool) {
	if b.err != nil || b.dead[i] {
		return reply{}, false
	}
	if b.wd == nil {
		b.cmds[i] <- c
		return b.vet(<-b.out)
	}
	b.wd.Reset(b.wdTimeout)
	select {
	case b.cmds[i] <- c:
	case <-b.wd.C:
		b.err = fmt.Errorf("asim: watchdog: node %d did not accept command %d at t=%.6f within %v (stuck nodeRuntime)", i, c.kind, b.now, b.wdTimeout) //lint:allow hotalloc terminal watchdog error path; the run aborts here
		return reply{}, false
	}
	b.disarm()
	b.wd.Reset(b.wdTimeout)
	var r reply
	select {
	case r = <-b.out:
	case <-b.wd.C:
		b.err = fmt.Errorf("asim: watchdog: node %d did not answer command %d at t=%.6f within %v (stuck nodeRuntime)", i, c.kind, b.now, b.wdTimeout) //lint:allow hotalloc terminal watchdog error path; the run aborts here
		return reply{}, false
	}
	b.disarm()
	return b.vet(r)
}

// disarm stops the watchdog timer and drains a concurrent expiry so the
// next Reset starts clean.
func (b *broker) disarm() {
	if !b.wd.Stop() {
		select {
		case <-b.wd.C:
		default:
		}
	}
}

// vet inspects a reply for the death notice a panicking node's recover
// sends in place of its normal answer.
func (b *broker) vet(r reply) (reply, bool) {
	if r.kind == replyDead {
		b.markDead(r.node)
		return r, false
	}
	return r, true
}

// markDead removes a node whose goroutine has exited: it leaves the
// bidding, is counted asleep (so it drops out of listener sets and the
// non-capture ping estimate), and receives no further commands.
func (b *broker) markDead(i int) {
	b.dead[i] = true
	b.states[i] = model.Sleep
	b.bids[i] = reply{kind: replyBid, node: i, at: math.Inf(1)}
	b.crashAt[i] = math.Inf(1)
}

func (b *broker) busyFor(i int) bool {
	return b.transmitter >= 0 && b.transmitter != i
}

// otherListeners counts listening nodes other than i, the continuous ping
// estimate the non-capture variant consumes.
func (b *broker) otherListeners(i int) int {
	count := 0
	for j := 0; j < b.n; j++ {
		if j != i && b.states[j] == model.Listen {
			count++
		}
	}
	return count
}

func (b *broker) rebid(i int) {
	if b.err != nil || b.dead[i] {
		return
	}
	r, ok := b.ask(i, command{
		kind: cmdBid, now: b.now, busy: b.busyFor(i),
		listeners: b.otherListeners(i),
	})
	if ok {
		b.bids[i] = r
	} // else markDead already parked the bid at +Inf (or b.err is set)
}

func (b *broker) rebidAll() {
	for i := 0; i < b.n; i++ {
		b.rebid(i)
	}
}

// loop is the broker's main scheduling loop.
func (b *broker) loop() *Metrics {
	b.rebidAll()
	for b.err == nil {
		// Earliest pending event: a node bid, the packet end, or a
		// scheduled crash (which outranks ties so a node dies before it
		// acts at the same instant).
		best := -1
		bestAt := math.Inf(1)
		for i := 0; i < b.n; i++ {
			if b.dead[i] || b.states[i] == model.Transmit {
				continue // gone, or packet-driven
			}
			if b.bids[i].at < bestAt {
				bestAt = b.bids[i].at
				best = i
			}
		}
		usePacket := b.transmitter >= 0 && b.pktEnd <= bestAt
		eventAt := bestAt
		if usePacket {
			eventAt = b.pktEnd
		}
		crash := -1
		for i := 0; i < b.n; i++ {
			if b.crashAt[i] <= eventAt && (crash < 0 || b.crashAt[i] < b.crashAt[crash]) {
				crash = i
			}
		}
		if crash >= 0 {
			eventAt = b.crashAt[crash]
		}
		if eventAt > b.cfg.Duration || (best < 0 && !usePacket && crash < 0) {
			break
		}
		b.now = eventAt
		if !b.measuring && b.now >= b.cfg.Warmup {
			b.measuring = true
			b.snapshotBatteries()
		}
		if crash >= 0 {
			b.killNode(crash)
			continue
		}
		if usePacket {
			b.finishPacket()
			continue
		}
		if b.bids[best].isTick {
			if _, ok := b.ask(best, command{kind: cmdTick, now: b.now}); !ok {
				continue // node died mid-tick (or watchdog fired)
			}
			b.rebid(best)
			continue
		}
		// Grant the transition.
		r, ok := b.ask(best, command{
			kind: cmdFire, now: b.now, busy: b.busyFor(best),
			listeners: b.otherListeners(best),
		})
		if !ok {
			continue // node died firing (or watchdog fired)
		}
		prev := b.states[best]
		b.states[best] = r.state
		switch {
		case prev == model.Listen && r.state == model.Transmit:
			b.beginPacket(best)
		default:
			b.rebid(best)
			// The non-capture variant's rates depend on the listener count,
			// which just changed for everyone else.
			if b.cfg.Variant == econcast.NonCapture && prev != r.state {
				for j := 0; j < b.n; j++ {
					if j != best && b.states[j] == model.Listen {
						b.rebid(j)
					}
				}
			}
		}
	}
	if b.err != nil {
		b.abort()
		return nil
	}
	return b.finish()
}

// killNode realizes node i's scheduled crash: it pokes the node at
// exactly its crash time, the node panics, the recover sends replyDead,
// and ask's vet marks it dead. A crashing transmitter abandons its hold
// — the in-flight packet dies undelivered and the medium is released.
func (b *broker) killNode(i int) {
	wasTx := b.transmitter == i
	if r, ok := b.ask(i, command{kind: cmdBid, now: b.now}); ok {
		// The node answered a command timed at its own crash — the
		// node-side crash check and the broker schedule disagree.
		b.err = fmt.Errorf("asim: node %d survived its scheduled crash at t=%.6f (reply kind %d)", i, b.now, r.kind) //lint:allow hotalloc terminal consistency-check error path; the run aborts here
		return
	}
	if b.err != nil {
		return // watchdog fired instead of the crash landing
	}
	if wasTx {
		b.transmitter = -1
		b.rebidAll() // unfreeze the survivors; the packet dies undelivered
	}
}

// abort releases the surviving node goroutines after a watchdog
// failure: closing the command channels makes their range loops return.
// The stuck node itself cannot be released — that leak is bounded to
// one goroutine on a path that already failed the run.
func (b *broker) abort() {
	for i := 0; i < b.n; i++ {
		close(b.cmds[i])
	}
}

// beginPacket starts a hold: captures the listener set and freezes
// everyone else by rebidding them under a busy carrier.
func (b *broker) beginPacket(tx int) {
	b.transmitter = tx
	b.listeners = b.listeners[:0]
	for i := 0; i < b.n; i++ {
		if i != tx && b.states[i] == model.Listen {
			b.listeners = append(b.listeners, i) //lint:allow hotalloc reuses the slice's capacity; grows at most n times per run
		}
	}
	b.pktEnd = b.now + b.packetTime
	for i := 0; i < b.n; i++ {
		if i != tx {
			b.rebid(i)
		}
	}
}

// finishPacket completes the current packet: account deliveries, ask the
// transmitter whether it holds the channel, and unfreeze on release.
// Receptions pass through the fault layer: a listener that died
// mid-packet receives nothing, a silenced transmitter delivers nothing,
// and the loss process may drop individual receptions. Fault-free, the
// loop degenerates to success == len(b.listeners) with zero extra draws.
func (b *broker) finishPacket() {
	tx := b.transmitter
	silenced := b.flt.Silenced(tx, b.now)
	success := 0
	lost := 0
	for _, j := range b.listeners {
		if b.states[j] != model.Listen {
			continue // died mid-packet: no reception
		}
		if silenced || b.flt.DropRx(j, b.now) {
			lost++
			continue
		}
		success++
	}
	if b.measuring {
		b.met.PacketsSent++
		b.met.Groupput += float64(success) * b.packetTime
		b.met.PacketsDelivered += success
		b.met.LostReceptions += lost
		if success > 0 {
			b.met.PacketsAnyDeliver++
			b.met.Anyput += b.packetTime
		}
	}
	r, ok := b.ask(tx, command{kind: cmdPacketDone, now: b.now, count: success})
	if !ok {
		// The transmitter died deciding: release the medium.
		b.transmitter = -1
		b.rebidAll()
		return
	}
	if r.cont {
		// Hold continues: same transmitter, recapture listeners (frozen, so
		// unchanged in a clique).
		b.pktEnd = b.now + b.packetTime
		return
	}
	b.transmitter = -1
	b.states[tx] = model.Listen
	b.rebidAll()
}

func (b *broker) snapshotBatteries() {
	b.warmupBattery = make([]float64, b.n) //lint:allow hotalloc once per run, at the warmup boundary
	for i := 0; i < b.n; i++ {
		if b.dead[i] {
			continue // dead nodes report zero power; no snapshot needed
		}
		r, ok := b.ask(i, command{kind: cmdStop, now: b.now, snapshot: true})
		if ok {
			b.warmupBattery[i] = r.battery
		}
	}
	// Snapshot rebids are unnecessary: cmdStop with snapshot does not
	// change node state, and bids remain valid.
}

func (b *broker) finish() *Metrics {
	window := b.cfg.Duration - b.cfg.Warmup
	b.met.Window = window
	b.met.Groupput /= window
	b.met.Anyput /= window
	b.met.Power = make([]float64, b.n)    //lint:allow hotalloc once per run, after the horizon
	b.met.EtaFinal = make([]float64, b.n) //lint:allow hotalloc once per run, after the horizon
	for i := 0; i < b.n; i++ {
		if b.dead[i] {
			close(b.cmds[i]) // the goroutine has already exited
			continue         // Power and EtaFinal stay 0 — never NaN
		}
		r, ok := b.ask(i, command{kind: cmdStop, now: b.cfg.Duration})
		close(b.cmds[i])
		if !ok {
			continue // died on the final accounting command
		}
		nd := b.cfg.Network.Nodes[i]
		start := 0.0
		if b.warmupBattery != nil {
			start = b.warmupBattery[i]
		}
		b.met.Power[i] = nd.Budget - (r.battery-start)/window
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		b.met.EtaFinal[i] = r.eta / p0
	}
	for i := 0; i < b.n; i++ {
		if b.dead[i] {
			b.met.Dead = b.dead
			break
		}
	}
	b.met.FaultTrace = b.flt.Trace()
	return &b.met
}
