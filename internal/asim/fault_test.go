package asim

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"econcast/internal/faults"
	"econcast/internal/model"
)

// TestFaultKillHalfSurvives crashes half an 8-node clique mid-run: every
// crashed node's goroutine panics, the recovers isolate the panics, and
// the broker keeps computing throughput over the survivors.
func TestFaultKillHalfSurvives(t *testing.T) {
	c := baseCfg()
	c.Network = model.Homogeneous(8, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	c.Duration, c.Warmup = 600, 300
	c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1, 2, 3}, KillAt: 200}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatalf("survivors delivered nothing: groupput = %v", m.Groupput)
	}
	if m.Dead == nil {
		t.Fatal("Dead not populated after four crashes")
	}
	for i := 0; i < 8; i++ {
		if m.Dead[i] != (i < 4) {
			t.Errorf("Dead[%d] = %v, want %v", i, m.Dead[i], i < 4)
		}
	}
	for i := 0; i < 4; i++ {
		if m.Power[i] != 0 || m.EtaFinal[i] != 0 {
			t.Errorf("dead node %d reported Power=%v EtaFinal=%v, want 0/0", i, m.Power[i], m.EtaFinal[i])
		}
	}
	if len(m.FaultTrace) != 4 {
		t.Fatalf("fault trace has %d events, want 4", len(m.FaultTrace))
	}
}

// TestFaultCrashDeterminism pins that runs with goroutine-death faults
// stay byte-identical across repetitions, including the Dead vector and
// the fault trace.
func TestFaultCrashDeterminism(t *testing.T) {
	cfg := baseCfg()
	cfg.Duration, cfg.Warmup = 300, 50
	cfg.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{1, 3}, KillAt: 120}}
	run := func() string {
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged under crash faults:\n%s\n%s", a, b)
	}
}

// TestFaultWatchdogCatchesStall wedges one node's goroutine mid-run and
// checks the watchdog fails the run with a diagnostic instead of
// hanging — the hardened-shutdown guarantee. The generous test timeout
// only matters if the watchdog is broken.
func TestFaultWatchdogCatchesStall(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 300, 50
	c.Watchdog = 200 * time.Millisecond
	c.stall = &stallSpec{node: 2, at: 100}
	done := make(chan error, 1)
	go func() {
		_, err := Run(c)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a wedged node returned no error")
		}
		if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "node 2") {
			t.Fatalf("watchdog diagnostic missing from error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run with a wedged node hung despite the watchdog")
	}
}

// TestFaultRestartRejected pins that asim refuses crash/restart
// schedules: a goroutine death is permanent, and silently dropping the
// restarts would diverge from the shared fault trace.
func TestFaultRestartRejected(t *testing.T) {
	c := baseCfg()
	c.Faults = &faults.Config{Crash: &faults.Crash{MeanUp: 50, MeanDown: 10}}
	_, err := Run(c)
	if err == nil || !strings.Contains(err.Error(), "restart") {
		t.Fatalf("restarting schedule not rejected: err = %v", err)
	}
}

// TestFaultLossAndSilence checks receiver-side loss and transmitter
// silence flow through the broker's delivery accounting.
func TestFaultLossAndSilence(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 400, 100
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = &faults.Config{Loss: &faults.Loss{P: 0.4}}
	lossy, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.LostReceptions == 0 {
		t.Fatal("40% loss produced no LostReceptions")
	}
	if !(lossy.Groupput < base.Groupput) {
		t.Errorf("loss did not reduce groupput: %v vs %v", lossy.Groupput, base.Groupput)
	}
	c.Faults = &faults.Config{Silence: &faults.Silence{MeanEvery: 1e-3, MeanFor: 1e9}}
	silent, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if silent.PacketsDelivered != 0 {
		t.Fatalf("always-silent network delivered %d packets", silent.PacketsDelivered)
	}
	if silent.PacketsSent == 0 {
		t.Fatal("silence stopped transmissions; it should only mute them")
	}
}

// TestFaultDriftAndBrownout checks the node-side fault projections
// (clock drift, harvest brownouts) run healthy and deterministically.
func TestFaultDriftAndBrownout(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 300, 100
	c.Faults = &faults.Config{
		Drift:    &faults.Drift{Max: 0.05},
		Brownout: &faults.Brownout{MeanEvery: 40, MeanFor: 20},
	}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent {
		t.Fatal("drift+brownout runs with the same seed diverged")
	}
	if a.Groupput <= 0 {
		t.Fatal("faulted network delivered nothing")
	}
}

// TestFaultTransmitterCrashMidHold pushes crash times into the middle of
// likely channel holds: the broker must release the medium and keep the
// survivors delivering, at every offset.
func TestFaultTransmitterCrashMidHold(t *testing.T) {
	for _, killAt := range []float64{60.0004, 150.0157, 260.11} {
		c := baseCfg()
		c.Duration, c.Warmup = 400, 300
		c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1}, KillAt: killAt}}
		m, err := Run(c)
		if err != nil {
			t.Fatalf("killAt=%v: %v", killAt, err)
		}
		if m.Groupput <= 0 {
			t.Fatalf("killAt=%v: survivors delivered nothing", killAt)
		}
	}
}

// TestFaultStressManyCrashes runs a 16-node clique where 12 nodes die at
// staggered times under -race: panic isolation, medium release, and the
// shutdown drain must all stay clean with heavy goroutine churn.
func TestFaultStressManyCrashes(t *testing.T) {
	c := clique16()
	c.Duration, c.Warmup = 200, 20
	kills := make([]int, 0, 12)
	for i := 0; i < 12; i++ {
		kills = append(kills, i)
	}
	c.Faults = &faults.Config{Crash: &faults.Crash{Kill: kills, KillAt: 90}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	deadCount := 0
	for _, d := range m.Dead {
		if d {
			deadCount++
		}
	}
	if deadCount != 12 {
		t.Fatalf("%d dead nodes, want 12", deadCount)
	}
	if m.Groupput < 0 {
		t.Fatalf("negative groupput %v", m.Groupput)
	}
}

// TestFaultWatchdogDisabled pins that a negative Watchdog setting turns
// the guard off and a healthy run still completes.
func TestFaultWatchdogDisabled(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 100, 20
	c.Watchdog = -1
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("healthy watchdog-disabled run delivered nothing")
	}
}
