package asim

import (
	"math"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/sim"
	"econcast/internal/statespace"
)

func net5() *model.Network {
	return model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
}

func baseCfg() Config {
	return Config{
		Network:  net5(),
		Mode:     model.Groupput,
		Variant:  econcast.Capture,
		Sigma:    0.5,
		Duration: 500,
		Warmup:   100,
		Seed:     1,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Network = nil },
		func(c *Config) { c.Sigma = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = c.Duration },
		func(c *Config) { c.WarmEta = []float64{1, 2} },
	}
	for i, mut := range bad {
		c := baseCfg()
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminismAcrossGoroutines(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 200, 50
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent {
		t.Fatalf("goroutine runs diverged: %v/%d vs %v/%d",
			a.Groupput, a.PacketsSent, b.Groupput, b.PacketsSent)
	}
}

// The goroutine runtime must reproduce the Gibbs-analysis throughput under
// frozen optimal multipliers, like the discrete-event engine does.
func TestFrozenEtaMatchesGibbs(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 3000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.12 {
		t.Fatalf("asim groupput %v, Gibbs %v (rel %.3f)", m.Groupput, ref.Throughput, rel)
	}
}

// Cross-engine consistency: the goroutine runtime and the discrete-event
// engine must agree statistically on the same workload.
func TestAgreesWithEventEngine(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac := baseCfg()
	ac.WarmEta = ref.Eta
	ac.FreezeEta = true
	ac.Duration = 3000
	ac.Warmup = 200
	am, err := Run(ac)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sim.Run(sim.Config{
		Network:   nw,
		Protocol:  sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
		Duration:  3000,
		Warmup:    200,
		Seed:      2,
		WarmEta:   ref.Eta,
		FreezeEta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(am.Groupput-sm.Groupput) / sm.Groupput; rel > 0.15 {
		t.Fatalf("asim %v vs sim %v (rel %.3f)", am.Groupput, sm.Groupput, rel)
	}
}

func TestAdaptivePowerTracksBudget(t *testing.T) {
	c := baseCfg()
	c.Delta = 0.1
	c.Duration = 4000
	c.Warmup = 1000
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Power {
		if math.Abs(p-10*model.MicroWatt)/(10*model.MicroWatt) > 0.15 {
			t.Fatalf("node %d: power %v, budget 10uW (eta %v)", i, p, m.EtaFinal[i])
		}
	}
	if m.Groupput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestAnyputMode(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Anyput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.Mode = model.Anyput
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 3000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Anyput-ref.Throughput) / ref.Throughput; rel > 0.12 {
		t.Fatalf("asim anyput %v, analytic %v", m.Anyput, ref.Throughput)
	}
}

func TestNonCaptureVariantRuns(t *testing.T) {
	c := baseCfg()
	c.Variant = econcast.NonCapture
	c.Duration = 1000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PacketsSent <= 0 {
		t.Fatal("no packets")
	}
}
