package asim

import (
	"bytes"
	"encoding/json"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
)

// clique16 is large enough that the broker juggles real contention:
// every bid/grant round fans out over 16 node goroutines.
func clique16() Config {
	return Config{
		Network:  model.Homogeneous(16, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Mode:     model.Groupput,
		Variant:  econcast.Capture,
		Sigma:    0.5,
		Delta:    0.1,
		Duration: 120,
		Warmup:   20,
		Seed:     7,
	}
}

// TestSeedDeterminismBytes is the executable form of the invariant
// econlint guards: two runs with the same seed must produce metrics that
// are identical byte for byte, despite 17 goroutines racing the Go
// scheduler. Comparing the marshaled form catches drift in every field
// at full float64 precision, not just a couple of summary numbers.
func TestSeedDeterminismBytes(t *testing.T) {
	cfg := clique16()
	marshal := func() []byte {
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different metrics:\n run1: %s\n run2: %s", a, b)
	}
	// Guard against a vacuous comparison: a different seed must actually
	// move the metrics.
	cfg.Seed++
	if c := marshal(); bytes.Equal(a, c) {
		t.Fatalf("different seed produced identical metrics: %s", c)
	}
}

// TestRaceStressClique exists to give `go test -race` something worth
// watching: a 16-node clique under both protocol variants drives the
// broker/node request-reply channels through thousands of grants,
// packet holds, and listener-set rebids. Any shared-memory slip in the
// protocol shows up here as a race report rather than silent corruption.
func TestRaceStressClique(t *testing.T) {
	for _, variant := range []econcast.Variant{econcast.Capture, econcast.NonCapture} {
		cfg := clique16()
		cfg.Variant = variant
		cfg.Duration, cfg.Warmup = 60, 10
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("variant %v: %v", variant, err)
		}
		if m.PacketsSent <= 0 {
			t.Fatalf("variant %v: clique made no progress (%d packets)", variant, m.PacketsSent)
		}
	}
}
