package baselines

import (
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/oracle"
)

func node10uW() model.Node {
	return model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
}

func TestBirthdayEvaluateKnownCase(t *testing.T) {
	// n=2, Pt=Pl=0.5: groupput = 2*0.5*(0.5)^0*1*0.5 = 0.5;
	// anyput = 2*0.5*0.5*(1-(1-1)^1) = 0.5.
	g, a := birthdayEvaluate(2, BirthdayParams{Pt: 0.5, Pl: 0.5})
	if math.Abs(g-0.5) > 1e-12 || math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("g=%v a=%v", g, a)
	}
}

func TestBirthdayDegenerateParams(t *testing.T) {
	for _, p := range []BirthdayParams{{0, 0.5}, {0.5, 0}, {1, 0.1}, {0.7, 0.5}} {
		if g, a := birthdayEvaluate(5, p); g != 0 || a != 0 {
			t.Fatalf("params %+v gave %v/%v", p, g, a)
		}
	}
}

func TestBirthdayOptimizeFeasibleAndSane(t *testing.T) {
	node := node10uW()
	res, err := BirthdayOptimize(5, node, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Params
	if p.Pt <= 0 || p.Pl <= 0 {
		t.Fatalf("degenerate params %+v", p)
	}
	// Energy feasibility.
	if p.Pt*node.TransmitPower+p.Pl*node.ListenPower > node.Budget*(1+1e-9) {
		t.Fatalf("energy violated: %+v", p)
	}
	if res.Groupput <= 0 {
		t.Fatal("no throughput")
	}
	// Against the oracle: Birthday must be well below.
	orc, _ := oracle.GroupputClosedForm(5, node)
	if res.Groupput >= orc.Throughput {
		t.Fatalf("Birthday %v >= oracle %v", res.Groupput, orc.Throughput)
	}
}

func TestBirthdaySimulationMatchesAnalytic(t *testing.T) {
	node := node10uW()
	res, err := BirthdayOptimize(5, node, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	g, a := SimulateBirthday(5, res.Params, 4_000_000, 7)
	if rel := math.Abs(g-res.Groupput) / res.Groupput; rel > 0.05 {
		t.Fatalf("sim groupput %v vs analytic %v", g, res.Groupput)
	}
	if rel := math.Abs(a-res.Anyput) / res.Anyput; rel > 0.05 {
		t.Fatalf("sim anyput %v vs analytic %v", a, res.Anyput)
	}
}

func TestBirthdayOptimizeErrors(t *testing.T) {
	if _, err := BirthdayOptimize(1, node10uW(), model.Groupput); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := BirthdayOptimize(5, model.Node{}, model.Groupput); err == nil {
		t.Fatal("zero node accepted")
	}
}

func TestSearchlightPaperCalibration(t *testing.T) {
	// rho=10uW, L=500uW -> P = 100 slots; with 50 ms slots the worst-case
	// latency is P * ceil(P/2) / 2 slots = 2500 slots = 125 s, the Fig. 5
	// anchor.
	node := node10uW()
	p, err := SearchlightPeriod(node)
	if err != nil {
		t.Fatal(err)
	}
	if p != 100 {
		t.Fatalf("period %d, want 100", p)
	}
	wcl, err := SearchlightWorstCaseLatency(node, SearchlightConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wcl-125) > 1e-9 {
		t.Fatalf("worst-case latency %v, want 125 s", wcl)
	}
}

func TestSearchlightThroughputBelowOracle(t *testing.T) {
	node := node10uW()
	ub, err := SearchlightThroughputUpperBound(5, node, SearchlightConfig{})
	if err != nil {
		t.Fatal(err)
	}
	orc, _ := oracle.GroupputClosedForm(5, node)
	if ub <= 0 || ub >= orc.Throughput {
		t.Fatalf("Searchlight UB %v vs oracle %v", ub, orc.Throughput)
	}
}

func TestSearchlightErrors(t *testing.T) {
	if _, err := SearchlightPeriod(model.Node{}); err == nil {
		t.Fatal("zero node accepted")
	}
	if _, err := SearchlightThroughputUpperBound(1, node10uW(), SearchlightConfig{}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestPandaOptimizeFeasible(t *testing.T) {
	node := node10uW()
	res, err := PandaOptimize(5, node, 1e-3, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerRate > node.Budget*(1+1e-9) {
		t.Fatalf("power %v exceeds budget", res.PowerRate)
	}
	if res.Groupput <= 0 {
		t.Fatal("no throughput")
	}
	orc, _ := oracle.GroupputClosedForm(5, node)
	ratio := res.Groupput / orc.Throughput
	// The paper's §VII-C comparison implies Panda reaches only a few
	// percent of the oracle at L = X (EconCast outperforms it 6x at
	// sigma=0.5 where EconCast's own ratio is ~0.14, and 17x at
	// sigma=0.25 where EconCast reaches ~0.43).
	if ratio < 0.005 || ratio > 0.10 {
		t.Fatalf("Panda/oracle ratio %v outside the expected band (params %+v)",
			ratio, res.Params)
	}
}

func TestPandaSimulationMatchesAnalytic(t *testing.T) {
	node := node10uW()
	res, err := PandaOptimize(5, node, 1e-3, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	sim := SimulatePanda(5, node, 1e-3, res.Params, 300000, 11)
	if rel := math.Abs(sim.Groupput-res.Groupput) / res.Groupput; rel > 0.05 {
		t.Fatalf("sim groupput %v vs analytic %v", sim.Groupput, res.Groupput)
	}
	if rel := math.Abs(sim.PowerRate-res.PowerRate) / res.PowerRate; rel > 0.05 {
		t.Fatalf("sim power %v vs analytic %v", sim.PowerRate, res.PowerRate)
	}
	if rel := math.Abs(sim.Anyput-res.Anyput) / res.Anyput; rel > 0.05 {
		t.Fatalf("sim anyput %v vs analytic %v", sim.Anyput, res.Anyput)
	}
}

func TestPandaErrors(t *testing.T) {
	if _, err := PandaOptimize(1, node10uW(), 1e-3, model.Groupput); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := PandaOptimize(5, node10uW(), 0, model.Groupput); err == nil {
		t.Fatal("theta=0 accepted")
	}
}

// The headline §VII-C claim: EconCast's achievable/oracle ratio at L=X
// exceeds Panda's by ~6x at sigma=0.5 and ~17x at sigma=0.25. Here we pin
// Panda's side of that ratio; the full claim is checked in the experiments
// package where both sides are computed.
func TestPandaRatioBandForHeadlineClaim(t *testing.T) {
	node := node10uW()
	res, err := PandaOptimize(5, node, 1e-3, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	orc, _ := oracle.GroupputClosedForm(5, node)
	ratio := res.Groupput / orc.Throughput
	// EconCast's ratios are ~0.143 (sigma=0.5) and ~0.428 (sigma=0.25);
	// the 6x / 17x claims need Panda in roughly [0.14/6.5, 0.43/15] =
	// [0.022, 0.029] -- allow a generous band around it.
	if ratio < 0.01 || ratio > 0.06 {
		t.Fatalf("Panda ratio %v outside headline band", ratio)
	}
}
