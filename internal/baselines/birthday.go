// Package baselines reconstructs the three prior-art protocols the paper
// compares against in §VII-C: Birthday protocols (McGlynn & Borbash,
// MobiHoc'01), Searchlight (Bakht et al., MobiCom'12), and Panda
// (Margolies et al., JSAC'16). None have open-source implementations, so
// each is rebuilt from its paper's description; every file documents the
// modeling assumptions. All three operate under stricter assumptions than
// EconCast (homogeneous nodes, known N, slotting or parameter exchange).
//
// Throughput values are normalized like the oracle's: the fraction of time
// spent on successful (per-receiver, for groupput) delivery, so they are
// directly comparable to oracle.Groupput and statespace.SolveP4 outputs.
package baselines

import (
	"fmt"
	"math"

	"econcast/internal/model"
	"econcast/internal/rng"
)

// BirthdayParams are the per-slot action probabilities of the Birthday
// protocol: in every slot a node independently transmits with probability
// Pt, listens with probability Pl, and sleeps otherwise.
type BirthdayParams struct {
	Pt, Pl float64
}

// BirthdayResult is the analytic performance of the Birthday protocol at
// given parameters.
type BirthdayResult struct {
	Params   BirthdayParams
	Groupput float64
	Anyput   float64
}

// birthdayEvaluate computes the exact per-slot expected throughput of the
// Birthday protocol with n nodes:
//
//	groupput = n * Pt * (1-Pt)^(n-2) * (n-1) * Pl
//
// (a transmission succeeds when exactly one node transmits; each of the
// other n-1 nodes independently listens with probability Pl, and
// P(exactly i transmits) * E[listeners | i transmits] telescopes to the
// expression above), and
//
//	anyput = n * Pt * (1-Pt)^(n-1) * (1 - (1 - Pl/(1-Pt))^(n-1)).
func birthdayEvaluate(n int, p BirthdayParams) (groupput, anyput float64) {
	if n < 2 || p.Pt <= 0 || p.Pl <= 0 || p.Pt >= 1 || p.Pt+p.Pl > 1 {
		return 0, 0
	}
	nf := float64(n)
	groupput = nf * p.Pt * math.Pow(1-p.Pt, nf-2) * (nf - 1) * p.Pl
	condListen := p.Pl / (1 - p.Pt)
	anyput = nf * p.Pt * math.Pow(1-p.Pt, nf-1) *
		(1 - math.Pow(1-condListen, nf-1))
	return groupput, anyput
}

// BirthdayOptimize returns the energy-feasible Birthday parameters that
// maximize the requested throughput measure for n identical nodes. The
// power constraint (with slot length equal to the packet length) is
// Pt*X + Pl*L <= rho; at the optimum it binds, leaving a one-dimensional
// unimodal problem in Pt solved by golden-section search.
func BirthdayOptimize(n int, node model.Node, mode model.Mode) (BirthdayResult, error) {
	if n < 2 {
		return BirthdayResult{}, fmt.Errorf("baselines: Birthday needs n >= 2, got %d", n)
	}
	if err := (&model.Network{Nodes: []model.Node{node}}).Validate(); err != nil {
		return BirthdayResult{}, err
	}
	score := func(pt float64) (float64, BirthdayParams) {
		pl := (node.Budget - pt*node.TransmitPower) / node.ListenPower
		if pl <= 0 {
			return 0, BirthdayParams{}
		}
		if pt+pl > 1 {
			pl = 1 - pt
		}
		p := BirthdayParams{Pt: pt, Pl: pl}
		g, a := birthdayEvaluate(n, p)
		if mode == model.Anyput {
			return a, p
		}
		return g, p
	}
	hi := math.Min(node.Budget/node.TransmitPower, 1)
	// Golden-section search on (0, hi).
	const phi = 0.6180339887498949
	lo := 0.0
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, _ := score(a)
	fb, _ := score(b)
	for i := 0; i < 200; i++ {
		if fa < fb {
			lo = a
			a, fa = b, fb
			b = lo + phi*(hi-lo)
			fb, _ = score(b)
		} else {
			hi = b
			b, fb = a, fa
			a = hi - phi*(hi-lo)
			fa, _ = score(a)
		}
	}
	best, params := score((lo + hi) / 2)
	g, any := birthdayEvaluate(n, params)
	_ = best
	return BirthdayResult{Params: params, Groupput: g, Anyput: any}, nil
}

// SimulateBirthday runs a slotted Monte Carlo of the Birthday protocol and
// returns the empirical normalized groupput and anyput. It exists to
// validate the closed forms above.
func SimulateBirthday(n int, p BirthdayParams, slots int, seed uint64) (groupput, anyput float64) {
	src := rng.New(seed)
	var groupSlots, anySlots int
	for s := 0; s < slots; s++ {
		tx := -1
		collision := false
		listeners := 0
		for i := 0; i < n; i++ {
			u := src.Float64()
			switch {
			case u < p.Pt:
				if tx >= 0 {
					collision = true
				}
				tx = i
			case u < p.Pt+p.Pl:
				listeners++
			}
		}
		if tx >= 0 && !collision {
			groupSlots += listeners
			if listeners > 0 {
				anySlots++
			}
		}
	}
	return float64(groupSlots) / float64(slots), float64(anySlots) / float64(slots)
}
