package baselines

import (
	"fmt"
	"math"

	"econcast/internal/model"
	"econcast/internal/rng"
)

// Panda (Margolies et al., "Panda: Neighbor discovery on a power
// harvesting budget", IEEE JSAC 2016) is reconstructed from its renewal
// description: homogeneous nodes that know N cycle through
//
//	sleep (exponential, rate lambda) -> listen (up to a window omega) ->
//	transmit or receive -> sleep.
//
// A regeneration cycle starts with all nodes asleep. The first node to
// wake listens for omega and, hearing nothing, transmits one packet of
// length theta. Other nodes that wake during the window listen until the
// packet completes and receive it; nodes that wake mid-packet sense the
// busy carrier and return to sleep (negligible energy). The protocol's
// parameters (lambda, omega) are chosen offline to maximize throughput
// under the per-node power budget, exactly the kind of centralized
// optimization Panda performs with its knowledge of N, rho, L, X.
//
// Modeling notes (documented deviations from [14], which tunes a few more
// implementation details): the wake offset within the window follows the
// exact truncated-exponential law; carrier sensing is perfect; ping/ACK
// overheads are ignored, which only favors Panda in the comparison.

// PandaParams are the tunable parameters of the Panda reconstruction.
type PandaParams struct {
	Lambda float64 // per-node wake rate while sleeping (1/s)
	Omega  float64 // listen window before transmitting (s)
}

// PandaResult is the analytic performance of Panda at chosen parameters.
type PandaResult struct {
	Params    PandaParams
	Groupput  float64 // normalized (fraction of time per receiver)
	Anyput    float64
	PowerRate float64 // mean per-node consumption (W)
}

// pandaEvaluate computes the renewal-reward performance of Panda.
func pandaEvaluate(n int, node model.Node, theta float64, p PandaParams) PandaResult {
	if n < 2 || p.Lambda <= 0 || p.Omega <= 0 {
		return PandaResult{Params: p}
	}
	nf := float64(n)
	// Cycle: idle wait Exp(n*lambda), then window omega, then packet theta.
	cycle := 1/(nf*p.Lambda) + p.Omega + theta
	// Probability another given node wakes during the window.
	q := 1 - math.Exp(-p.Lambda*p.Omega)
	// Expected wake offset within the window given waking in it
	// (truncated exponential): E[U] = 1/lambda - omega*exp(-l*w)/q.
	eu := 1/p.Lambda - p.Omega*math.Exp(-p.Lambda*p.Omega)/q
	// Receivers listen for the window remainder plus the packet.
	recvListen := (p.Omega - eu) + theta

	expReceivers := (nf - 1) * q
	groupput := expReceivers * theta / cycle
	anyput := (1 - math.Pow(1-q, nf-1)) * theta / cycle

	// Per-node energy per cycle: initiator role rotates uniformly.
	initiator := p.Omega*node.ListenPower + theta*node.TransmitPower
	receiver := q * recvListen * node.ListenPower
	energy := initiator/nf + (nf-1)/nf*receiver
	return PandaResult{
		Params:    p,
		Groupput:  groupput,
		Anyput:    anyput,
		PowerRate: energy / cycle,
	}
}

// PandaOptimize searches (lambda, omega) for the highest throughput in the
// given mode under the power budget, mimicking Panda's offline parameter
// optimization. theta is the packet length in seconds.
func PandaOptimize(n int, node model.Node, theta float64, mode model.Mode) (PandaResult, error) {
	if n < 2 {
		return PandaResult{}, fmt.Errorf("baselines: Panda needs n >= 2, got %d", n)
	}
	if theta <= 0 {
		return PandaResult{}, fmt.Errorf("baselines: packet length must be positive")
	}
	if err := (&model.Network{Nodes: []model.Node{node}}).Validate(); err != nil {
		return PandaResult{}, err
	}
	score := func(r PandaResult) float64 {
		if r.PowerRate > node.Budget {
			return 0
		}
		if mode == model.Anyput {
			return r.Anyput
		}
		return r.Groupput
	}
	// Log-space grid over lambda and omega, then local refinement.
	best := PandaResult{}
	bestScore := 0.0
	for _, lgL := range logspace(1e-3, 1e4, 60) {
		for _, lgW := range logspace(theta/10, 1e3, 60) {
			r := pandaEvaluate(n, node, theta, PandaParams{Lambda: lgL, Omega: lgW})
			if s := score(r); s > bestScore {
				bestScore = s
				best = r
			}
		}
	}
	if bestScore == 0 { //lint:allow floateq zero means "never assigned", not a computed score
		return PandaResult{}, fmt.Errorf("baselines: no feasible Panda parameters")
	}
	// Refine around the grid optimum with coordinate-wise shrinkage.
	cur := best.Params
	span := 3.0
	for iter := 0; iter < 40; iter++ {
		improved := false
		for _, cand := range []PandaParams{
			{cur.Lambda * span, cur.Omega}, {cur.Lambda / span, cur.Omega},
			{cur.Lambda, cur.Omega * span}, {cur.Lambda, cur.Omega / span},
			{cur.Lambda * span, cur.Omega / span}, {cur.Lambda / span, cur.Omega * span},
		} {
			r := pandaEvaluate(n, node, theta, cand)
			if s := score(r); s > bestScore {
				bestScore = s
				best = r
				cur = cand
				improved = true
			}
		}
		if !improved {
			span = math.Sqrt(span)
			if span < 1.0001 {
				break
			}
		}
	}
	return best, nil
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// SimulatePanda Monte-Carlos the renewal cycle to validate pandaEvaluate:
// it draws wake times explicitly and measures throughput and power.
func SimulatePanda(n int, node model.Node, theta float64, p PandaParams, cycles int, seed uint64) PandaResult {
	src := rng.New(seed)
	var totalTime, group, anyp, energyAll float64
	for c := 0; c < cycles; c++ {
		// Time until the first of n sleepers wakes.
		idle := src.Exp(float64(n) * p.Lambda)
		cycleTime := idle + p.Omega + theta
		receivers := 0
		var energy float64
		energy += p.Omega*node.ListenPower + theta*node.TransmitPower // initiator
		for j := 1; j < n; j++ {
			u := src.Exp(p.Lambda)
			if u < p.Omega {
				receivers++
				energy += ((p.Omega - u) + theta) * node.ListenPower
			}
		}
		totalTime += cycleTime
		group += float64(receivers) * theta
		if receivers > 0 {
			anyp += theta
		}
		energyAll += energy
	}
	return PandaResult{
		Params:    p,
		Groupput:  group / totalTime,
		Anyput:    anyp / totalTime,
		PowerRate: energyAll / totalTime / float64(n),
	}
}
