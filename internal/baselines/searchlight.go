package baselines

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// SearchlightConfig calibrates the Searchlight reconstruction to the
// paper's Fig. 5 setting: 50 ms slots and 1 ms beacons.
type SearchlightConfig struct {
	SlotTime   float64 // seconds per slot (default 50 ms)
	BeaconTime float64 // seconds per beacon/packet (default 1 ms)
}

func (c SearchlightConfig) withDefaults() SearchlightConfig {
	c.SlotTime = model.DefaultIfZero(c.SlotTime, 50e-3)
	c.BeaconTime = model.DefaultIfZero(c.BeaconTime, 1e-3)
	return c
}

// SearchlightPeriod returns the schedule period P (in slots) for a node
// under its power budget. Searchlight keeps two active slots per period
// (the anchor and the probe), so its duty cycle is 2/P; an active slot
// costs roughly the listen power for the whole slot, giving
// (2/P) * L <= rho, i.e. P = ceil(2L / rho).
func SearchlightPeriod(node model.Node) (int, error) {
	if node.Budget <= 0 || node.ListenPower <= 0 {
		return 0, fmt.Errorf("baselines: invalid node parameters")
	}
	p := int(math.Ceil(2 * node.ListenPower / node.Budget))
	if p < 2 {
		p = 2
	}
	return p, nil
}

// SearchlightWorstCaseLatency returns the pairwise worst-case discovery
// latency in seconds. With striped probing the probe slot sweeps
// ceil(P/2) positions and overlap is guaranteed within half the sweep, so
// the worst case is P * ceil(P/2) / 2 slots. With the paper's calibration
// (rho=10uW, L=500uW, 50 ms slots: P=100) this gives the 125 s bound shown
// in Fig. 5(a).
func SearchlightWorstCaseLatency(node model.Node, cfg SearchlightConfig) (float64, error) {
	cfg = cfg.withDefaults()
	p, err := SearchlightPeriod(node)
	if err != nil {
		return 0, err
	}
	slots := float64(p) * math.Ceil(float64(p)/2) / 2
	return slots * cfg.SlotTime, nil
}

// SearchlightThroughputUpperBound returns the paper's upper bound on
// Searchlight's groupput for n nodes: the pairwise throughput times (n-1),
// assuming all other nodes receive whenever one transmits (§VII-C). The
// pairwise throughput takes one slot of useful data exchange per discovery
// and the average discovery latency as half the worst case:
//
//	T_pair = SlotTime / (WCL/2 ... ) -- i.e. 1 / avgLatencySlots,
//
// expressed as a fraction of time, then scaled by (n-1).
func SearchlightThroughputUpperBound(n int, node model.Node, cfg SearchlightConfig) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("baselines: Searchlight needs n >= 2")
	}
	cfg = cfg.withDefaults()
	wcl, err := SearchlightWorstCaseLatency(node, cfg)
	if err != nil {
		return 0, err
	}
	avg := wcl / 2
	pairwise := cfg.SlotTime / avg // fraction of time exchanging data
	return float64(n-1) * pairwise, nil
}
