package statespace

import (
	"math"

	"econcast/internal/model"
)

// Transition is one outgoing edge of the network Markov chain: the index of
// the destination state and the transition rate.
type Transition struct {
	To   int
	Rate float64
}

// Transitions enumerates the outgoing transitions of state idx under the
// EconCast-C dynamics with frozen multipliers eta (the chain analyzed in
// Lemma 2 / eq. 31). Carrier sensing restricts moves: while a transmitter
// is present, only the transmitter can move (x -> l); otherwise sleepers
// may start listening, listeners may sleep, and listeners may start
// transmitting.
func (sp *Space) Transitions(idx int, eta []float64, sigma float64, mode model.Mode) []Transition {
	w := sp.states[idx]
	n := sp.nw.N()
	var out []Transition

	if w.HasTransmitter() {
		// Only x -> l with rate exp(-T_w / sigma).
		i := w.Transmitter
		next := model.NetState{
			Transmitter: model.NoTransmitter,
			Listeners:   w.Listeners | 1<<uint(i),
		}
		rate := math.Exp(-w.Throughput(mode) / sigma)
		out = append(out, Transition{To: sp.Index(next), Rate: rate})
		return out
	}

	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		node := sp.nw.Nodes[i]
		if w.Listeners&bit == 0 {
			// Sleeping: s -> l with rate exp(-eta_i L_i / sigma).
			next := model.NetState{Transmitter: model.NoTransmitter, Listeners: w.Listeners | bit}
			out = append(out, Transition{
				To:   sp.Index(next),
				Rate: math.Exp(-eta[i] * node.ListenPower / sigma),
			})
			continue
		}
		// Listening: l -> s with rate 1.
		next := model.NetState{Transmitter: model.NoTransmitter, Listeners: w.Listeners &^ bit}
		out = append(out, Transition{To: sp.Index(next), Rate: 1})
		// Listening: l -> x with rate exp(eta_i (L_i - X_i) / sigma).
		nextX := model.NetState{Transmitter: i, Listeners: w.Listeners &^ bit}
		out = append(out, Transition{
			To:   sp.Index(nextX),
			Rate: math.Exp(eta[i] * (node.ListenPower - node.TransmitPower) / sigma),
		})
	}
	return out
}

// DetailedBalanceError returns the maximum relative violation of the
// detailed-balance equations pi_w r(w,w') = pi_w' r(w',w) over all
// transitions, under the Gibbs distribution for the same eta/sigma/mode.
// Lemma 2 asserts this is zero.
func (sp *Space) DetailedBalanceError(eta []float64, sigma float64, mode model.Mode) float64 {
	d := sp.Gibbs(eta, sigma, mode)
	worst := 0.0
	for i := range sp.states {
		for _, tr := range sp.Transitions(i, eta, sigma, mode) {
			fwd := d.Pi(i) * tr.Rate
			// Find the reverse rate.
			var rev float64
			for _, back := range sp.Transitions(tr.To, eta, sigma, mode) {
				if back.To == i {
					rev = back.Rate
					break
				}
			}
			bwd := d.Pi(tr.To) * rev
			scale := math.Max(fwd, bwd)
			if scale == 0 { //lint:allow floateq both flows exactly zero: balance is trivially satisfied
				continue
			}
			if v := math.Abs(fwd-bwd) / scale; v > worst {
				worst = v
			}
		}
	}
	return worst
}

// StationaryByPowerIteration computes the stationary distribution of the
// chain directly from the transition rates via uniformized power iteration,
// as an independent check on the closed form (19). It returns the
// distribution as a plain slice indexed like the space.
func (sp *Space) StationaryByPowerIteration(eta []float64, sigma float64, mode model.Mode, iters int) []float64 {
	m := sp.Len()
	// Uniformization constant: max total outflow rate.
	type edge struct {
		to   int
		rate float64
	}
	adj := make([][]edge, m)
	maxOut := 0.0
	for i := 0; i < m; i++ {
		total := 0.0
		for _, tr := range sp.Transitions(i, eta, sigma, mode) {
			adj[i] = append(adj[i], edge{tr.To, tr.Rate})
			total += tr.Rate
		}
		if total > maxOut {
			maxOut = total
		}
	}
	q := maxOut * 1.05
	pi := make([]float64, m)
	next := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	for k := 0; k < iters; k++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < m; i++ {
			p := pi[i]
			if p == 0 { //lint:allow floateq zero-mass skip is an optimization; tiny mass still propagates
				continue
			}
			stay := p
			for _, e := range adj[i] {
				f := p * e.rate / q
				next[e.to] += f
				stay -= f
			}
			next[i] += stay
		}
		pi, next = next, pi
	}
	return pi
}
