package statespace

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// SolveP4Typed solves (P4) for a network made of a few node *types*:
// counts[t] identical nodes with parameters types[t]. The state space is
// aggregated into classes (transmitter type, listener count per type), so
// the complexity is (T+1) * prod(counts[t]+1) instead of (N+2)*2^(N-1) —
// hundreds of nodes are tractable when T is small. With T = 1 this
// coincides with SolveP4Homogeneous; with all counts equal to 1 it
// coincides with the exact enumeration.
func SolveP4Typed(counts []int, types []model.Node, sigma float64, mode model.Mode, opts *P4Options) (*P4Result, error) {
	if len(counts) != len(types) || len(types) == 0 {
		return nil, fmt.Errorf("statespace: %d counts for %d types", len(counts), len(types))
	}
	total := 0
	for t, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("statespace: type %d count %d must be positive", t, c)
		}
		total += c
		one := &model.Network{Nodes: []model.Node{types[t]}}
		if err := one.Validate(); err != nil {
			return nil, err
		}
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("statespace: sigma %v must be positive", sigma)
	}
	classes := len(types) + 1
	for _, c := range counts {
		classes *= c + 1
	}
	if classes > 1<<22 {
		return nil, fmt.Errorf("statespace: %d aggregated classes exceed the limit", classes)
	}

	// Scale powers to O(1).
	p0 := 0.0
	for _, ty := range types {
		p0 = math.Max(p0, math.Max(ty.ListenPower, ty.TransmitPower))
	}
	scaled := make([]model.Node, len(types))
	rho := make([]float64, len(types))
	for t, ty := range types {
		scaled[t] = model.Node{
			Budget:        ty.Budget / p0,
			ListenPower:   ty.ListenPower / p0,
			TransmitPower: ty.TransmitPower / p0,
		}
		rho[t] = scaled[t].Budget
	}

	ev := newTypedEval(counts, scaled, sigma, mode)
	eta, res, iters, converged := solveDual(ev, opts.withDefaults())
	out := finishResult(eta, res, iters, converged, p0)

	// Expand per-type values to per-node slices (type-major order).
	expand := func(v []float64) []float64 {
		full := make([]float64, 0, total)
		for t, c := range counts {
			for k := 0; k < c; k++ {
				full = append(full, v[t])
			}
		}
		return full
	}
	out.Alpha = expand(out.Alpha)
	out.Beta = expand(out.Beta)
	out.Eta = expand(out.Eta)
	out.Consumption = expand(out.Consumption)
	return out, nil
}

// typedEval aggregates the Gibbs computation over (transmitter type,
// per-type listener counts) classes.
type typedEval struct {
	counts []int
	types  []model.Node // scaled
	mode   model.Mode
	sig    float64
	rho    []float64

	// lgBinom[t][k][c] = log C(counts[t]-k, c) for k in {0,1}.
	lgBinom [][2][]float64
}

func newTypedEval(counts []int, types []model.Node, sigma float64, mode model.Mode) *typedEval {
	e := &typedEval{
		counts: counts,
		types:  types,
		mode:   mode,
		sig:    sigma,
		rho:    make([]float64, len(types)),
	}
	for t, ty := range types {
		e.rho[t] = ty.Budget
	}
	e.lgBinom = make([][2][]float64, len(counts))
	for t, n := range counts {
		e.lgBinom[t][0] = logBinomials(n)
		if n >= 1 {
			e.lgBinom[t][1] = logBinomials(n - 1)
		}
	}
	return e
}

func (e *typedEval) dims() int          { return len(e.types) }
func (e *typedEval) budgets() []float64 { return e.rho }
func (e *typedEval) sigma() float64     { return e.sig }

func (e *typedEval) eval(eta []float64) evalResult {
	T := len(e.types)
	// Enumerate classes: txType in {-1, 0..T-1}, listener counts per type.
	// Accumulate with a running max-log trick in two passes: first collect
	// log-weights and statistics functionals, then combine stably.
	type stat struct {
		logW      float64
		listeners []int
		txType    int
		tw        float64
	}
	var stats []stat

	counts := make([]int, T)
	var rec func(t int, logMult, listenCost float64, sumListeners int)
	emit := func(txType int, logMult, listenCost float64, sumListeners int) {
		tw := 0.0
		if txType >= 0 {
			if e.mode == model.Anyput {
				if sumListeners >= 1 {
					tw = 1
				}
			} else {
				tw = float64(sumListeners)
			}
		}
		cost := listenCost
		if txType >= 0 {
			cost += eta[txType] * e.types[txType].TransmitPower
			logMult += math.Log(float64(e.counts[txType]))
		}
		stats = append(stats, stat{
			logW:      logMult + (tw-cost)/e.sig,
			listeners: append([]int(nil), counts...),
			txType:    txType,
			tw:        tw,
		})
	}
	var txType int
	rec = func(t int, logMult, listenCost float64, sumListeners int) {
		if t == T {
			emit(txType, logMult, listenCost, sumListeners)
			return
		}
		avail := e.counts[t]
		k := 0
		if txType == t {
			k = 1
			avail--
		}
		for c := 0; c <= avail; c++ {
			counts[t] = c
			rec(t+1,
				logMult+e.lgBinom[t][k][c],
				listenCost+float64(c)*eta[t]*e.types[t].ListenPower,
				sumListeners+c)
		}
		counts[t] = 0
	}
	txType = -1
	rec(0, 0, 0, 0)
	for txType = 0; txType < T; txType++ {
		rec(0, 0, 0, 0)
	}

	// Stable normalization.
	maxLog := math.Inf(-1)
	for _, s := range stats {
		if s.logW > maxLog {
			maxLog = s.logW
		}
	}
	var z float64
	for _, s := range stats {
		z += math.Exp(s.logW - maxLog)
	}
	logZ := maxLog + math.Log(z)

	eListen := make([]float64, T)
	pTx := make([]float64, T)
	var thr, burstNum, burstDen float64
	for _, s := range stats {
		p := math.Exp(s.logW - logZ)
		sum := 0
		for t, c := range s.listeners {
			eListen[t] += float64(c) * p
			sum += c
		}
		if s.txType >= 0 {
			pTx[s.txType] += p
			thr += s.tw * p
			if sum >= 1 {
				burstNum += p
				burstDen += p * math.Exp(-float64(sum)/e.sig)
			}
		}
	}

	alpha := make([]float64, T)
	beta := make([]float64, T)
	cons := make([]float64, T)
	dual := e.sig * logZ
	for t := 0; t < T; t++ {
		n := float64(e.counts[t])
		alpha[t] = eListen[t] / n
		beta[t] = pTx[t] / n
		cons[t] = alpha[t]*e.types[t].ListenPower + beta[t]*e.types[t].TransmitPower
		dual += n * eta[t] * e.rho[t]
	}
	burst := math.Inf(1)
	if e.mode == model.Anyput {
		burst = AnyputBurstLength(e.sig)
	} else if burstDen > 0 {
		burst = burstNum / burstDen
	}
	return evalResult{
		dual:  dual,
		cons:  cons,
		alpha: alpha,
		beta:  beta,
		thr:   thr,
		burst: burst,
	}
}
