package statespace

import (
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/rng"
)

// oracleGroupputHomog is the paper's closed form (§IV-A): beta* =
// rho/(X+(N-1)L), alpha* = (N-1)beta*, T*_g = N alpha*.
func oracleGroupputHomog(n int, rho, l, x float64) float64 {
	beta := rho / (x + float64(n-1)*l)
	return float64(n) * float64(n-1) * beta
}

func TestSolveP4HomogeneousConsumesBudget(t *testing.T) {
	nw := testNet5()
	for _, sigma := range []float64{0.25, 0.5} {
		res, err := SolveP4(nw, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("sigma=%v: not converged after %d iters", sigma, res.Iterations)
		}
		for i, c := range res.Consumption {
			if math.Abs(c-10*model.MicroWatt)/(10*model.MicroWatt) > 1e-4 {
				t.Fatalf("sigma=%v node %d: consumption %v, want 10uW", sigma, i, c)
			}
		}
	}
}

func TestSolveP4ThroughputBelowOracleAndMonotone(t *testing.T) {
	nw := testNet5()
	oracle := oracleGroupputHomog(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	prev := 0.0
	for _, sigma := range []float64{1.0, 0.5, 0.25, 0.15} {
		res, err := SolveP4(nw, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Throughput / oracle
		if ratio <= 0 || ratio >= 1 {
			t.Fatalf("sigma=%v: ratio %v outside (0,1)", sigma, ratio)
		}
		if ratio <= prev {
			t.Fatalf("sigma=%v: ratio %v did not increase from %v", sigma, ratio, prev)
		}
		prev = ratio
	}
	// Anchors consistent with the paper's Fig. 2 (h=10): ratio ~0.9 at
	// sigma=0.1 and ~0.4 at sigma=0.25, approaching 1 as sigma -> 0.
	res, _ := SolveP4(nw, 0.25, model.Groupput, nil)
	if r := res.Throughput / oracle; r < 0.3 || r > 0.6 {
		t.Fatalf("sigma=0.25 ratio %v outside expected band", r)
	}
	res, _ = SolveP4(nw, 0.1, model.Groupput, nil)
	if r := res.Throughput / oracle; r < 0.85 {
		t.Fatalf("sigma=0.1 ratio %v, want ~0.9", r)
	}
}

func TestSolveP4AnyputClosedFormAnchor(t *testing.T) {
	// Oracle anyput (homogeneous): beta* = rho/(X+L), T*_a = N beta*.
	nw := testNet5()
	oracle := 5 * 10 * model.MicroWatt / (1000 * model.MicroWatt)
	prev := 0.0
	for _, sigma := range []float64{0.5, 0.25} {
		res, err := SolveP4(nw, sigma, model.Anyput, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Throughput / oracle
		if ratio <= prev || ratio >= 1 {
			t.Fatalf("sigma=%v: anyput ratio %v (prev %v)", sigma, ratio, prev)
		}
		prev = ratio
	}
}

// The aggregated homogeneous path must agree with exact enumeration.
func TestHomogeneousAggregationMatchesExact(t *testing.T) {
	node := model.Node{Budget: 10 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 300 * model.MicroWatt}
	for _, mode := range []model.Mode{model.Groupput, model.Anyput} {
		for _, sigma := range []float64{0.25, 0.5} {
			exact, err := SolveP4(model.Homogeneous(5, node.Budget, node.ListenPower, node.TransmitPower), sigma, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := SolveP4Homogeneous(5, node, sigma, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact.Throughput-agg.Throughput) > 1e-6*math.Max(exact.Throughput, 1e-12) {
				t.Fatalf("mode=%v sigma=%v: exact %v vs aggregated %v",
					mode, sigma, exact.Throughput, agg.Throughput)
			}
			if math.Abs(exact.Alpha[0]-agg.Alpha[0]) > 1e-6 {
				t.Fatalf("alpha mismatch: %v vs %v", exact.Alpha[0], agg.Alpha[0])
			}
			if mode == model.Groupput &&
				math.Abs(exact.BurstLength-agg.BurstLength)/exact.BurstLength > 1e-4 {
				t.Fatalf("burst mismatch: %v vs %v", exact.BurstLength, agg.BurstLength)
			}
		}
	}
}

// The raw evaluators must agree at arbitrary eta, not just at the optimum.
func TestHomogEvalMatchesExactEval(t *testing.T) {
	node := model.Node{Budget: 0.02, ListenPower: 1, TransmitPower: 0.6}
	n := 4
	nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
	sp, _ := Enumerate(nw)
	rho := make([]float64, n)
	for i := range rho {
		rho[i] = node.Budget
	}
	for _, sigma := range []float64{0.3, 0.8} {
		ex := &exactEval{space: sp, mode: model.Groupput, sig: sigma, rho: rho}
		hg := newHomogEval(n, node, sigma, model.Groupput)
		for _, h := range []float64{0, 0.5, 1.5, 4} {
			etaVec := repeat(h, n)
			re := ex.eval(etaVec)
			rh := hg.eval([]float64{h})
			if math.Abs(re.thr-rh.thr) > 1e-9 {
				t.Fatalf("eta=%v: thr %v vs %v", h, re.thr, rh.thr)
			}
			if math.Abs(re.alpha[0]-rh.alpha[0]) > 1e-9 {
				t.Fatalf("eta=%v: alpha %v vs %v", h, re.alpha[0], rh.alpha[0])
			}
			if math.Abs(re.beta[0]-rh.beta[0]) > 1e-9 {
				t.Fatalf("eta=%v: beta %v vs %v", h, re.beta[0], rh.beta[0])
			}
			// Dual values agree exactly (same Z, same eta.rho term).
			if math.Abs(re.dual-rh.dual) > 1e-9 {
				t.Fatalf("eta=%v: dual %v vs %v", h, re.dual, rh.dual)
			}
		}
	}
}

func TestSolveP4LargeNViaAggregation(t *testing.T) {
	nw := model.Homogeneous(100, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	res, err := SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if len(res.Alpha) != 100 {
		t.Fatalf("alpha length %d", len(res.Alpha))
	}
	oracle := oracleGroupputHomog(100, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	if r := res.Throughput / oracle; r <= 0 || r >= 1 {
		t.Fatalf("ratio %v", r)
	}
}

func TestSolveP4LargeHeterogeneous(t *testing.T) {
	// Two node types at N=30: handled by the typed aggregation.
	nw := model.Homogeneous(30, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	nw.Nodes[3].Budget *= 2
	res, err := SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || !res.Converged {
		t.Fatalf("typed dispatch failed: %+v", res)
	}
	// Thirty distinct types: genuinely intractable, must error.
	many := model.Homogeneous(30, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	for i := range many.Nodes {
		many.Nodes[i].Budget = (10 + float64(i)) * model.MicroWatt
	}
	if _, err := SolveP4(many, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("expected error for 30 distinct node types")
	}
}

func TestSolveP4InvalidInputs(t *testing.T) {
	if _, err := SolveP4(testNet5(), 0, model.Groupput, nil); err == nil {
		t.Fatal("sigma=0 accepted")
	}
	if _, err := SolveP4(&model.Network{}, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := SolveP4Homogeneous(0, model.Node{Budget: 1, ListenPower: 1, TransmitPower: 1}, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// Heterogeneous solve: each node's consumption must respect (and for tight
// budgets, meet) its own budget.
func TestSolveP4Heterogeneous(t *testing.T) {
	src := rng.New(3)
	spec := model.HeterogeneitySpec{N: 5, H: 100}
	for trial := 0; trial < 3; trial++ {
		nw := spec.Sample(src)
		res, err := SolveP4(nw, 0.5, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Consumption {
			budget := nw.Nodes[i].Budget
			if c > budget*(1+1e-3) {
				t.Fatalf("trial %d node %d: consumption %v exceeds budget %v",
					trial, i, c, budget)
			}
		}
		if res.Throughput <= 0 {
			t.Fatalf("trial %d: throughput %v", trial, res.Throughput)
		}
	}
}

// Eta returned unscaled must reproduce the optimal distribution on the
// original (unscaled) network.
func TestEtaUnscaledReproducesOptimum(t *testing.T) {
	nw := testNet5()
	res, err := SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := Enumerate(nw)
	d := sp.Gibbs(res.Eta, 0.5, model.Groupput)
	if math.Abs(d.Throughput()-res.Throughput) > 1e-9 {
		t.Fatalf("rebuilt throughput %v, solver %v", d.Throughput(), res.Throughput)
	}
	alpha, _ := d.Fractions()
	if math.Abs(alpha[0]-res.Alpha[0]) > 1e-9 {
		t.Fatalf("rebuilt alpha %v, solver %v", alpha[0], res.Alpha[0])
	}
}

func TestBurstLengthShape(t *testing.T) {
	// Anyput burst length is exactly e^{1/sigma}, independent of N (eq. 35).
	for _, sigma := range []float64{0.25, 0.5, 1} {
		want := math.Exp(1 / sigma)
		for _, n := range []int{5, 10} {
			nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
			res, err := SolveP4(nw, sigma, model.Anyput, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.BurstLength-want)/want > 1e-9 {
				t.Fatalf("anyput burst N=%d sigma=%v: %v, want %v", n, sigma, res.BurstLength, want)
			}
		}
	}
	// Groupput burst grows as sigma decreases, and with N (Fig. 4a).
	burst := func(n int, sigma float64) float64 {
		nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		res, err := SolveP4(nw, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.BurstLength
	}
	if !(burst(5, 0.25) > burst(5, 0.5)) {
		t.Fatal("groupput burst did not grow as sigma decreased")
	}
	if !(burst(10, 0.25) > burst(5, 0.25)) {
		t.Fatal("groupput burst did not grow with N")
	}
	// Paper anchors: N=10, sigma=0.25 gives ~85; sigma=0.1 gives ~4e5.
	b25 := burst(10, 0.25)
	if b25 < 10 || b25 > 1000 {
		t.Fatalf("burst(10, 0.25) = %v, expected order ~85", b25)
	}
	b10 := burst(10, 0.1)
	if b10 < 1e4 {
		t.Fatalf("burst(10, 0.1) = %v, expected > 1e4", b10)
	}
}

// Algorithm 1 (literal) must approach the line-searched solution.
func TestAlgorithm1Converges(t *testing.T) {
	nw := testNet5()
	ref, err := SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, trace, err := SolveAlgorithm1(nw, 0.5, model.Groupput, ConstantDelta(0.5), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Violation) != 3000 {
		t.Fatalf("trace length %d", len(trace.Violation))
	}
	if math.Abs(res.Throughput-ref.Throughput)/ref.Throughput > 0.15 {
		t.Fatalf("Algorithm 1 throughput %v, reference %v", res.Throughput, ref.Throughput)
	}
	// Violation at the end must be far below the start.
	last := trace.Violation[len(trace.Violation)-1]
	if last > trace.Violation[0]*0.1 {
		t.Fatalf("violation did not decrease: %v -> %v", trace.Violation[0], last)
	}
}

func BenchmarkSolveP4ExactN5(b *testing.B) {
	nw := testNet5()
	for i := 0; i < b.N; i++ {
		if _, err := SolveP4(nw, 0.25, model.Groupput, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveP4HomogeneousN100(b *testing.B) {
	node := model.Node{Budget: 10 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
	for i := 0; i < b.N; i++ {
		if _, err := SolveP4Homogeneous(100, node, 0.25, model.Groupput, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Independent optimality check: the dual D(eta) = sigma logZ + eta.rho is
// convex, so eta* from the solver must be a global minimizer; random
// perturbations around it must not decrease D.
func TestDualOptimalityProbe(t *testing.T) {
	src := rng.New(17)
	nw := model.HeterogeneitySpec{N: 4, H: 50}.Sample(src)
	const sigma = 0.4
	res, err := SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	p0 := scaleFactor(nw)
	scaled := scaledNetwork(nw, p0)
	sp, _ := Enumerate(scaled)
	rho := make([]float64, nw.N())
	for i, n := range scaled.Nodes {
		rho[i] = n.Budget
	}
	ev := &exactEval{space: sp, mode: model.Groupput, sig: sigma, rho: rho}
	etaStar := make([]float64, nw.N())
	for i := range etaStar {
		etaStar[i] = res.Eta[i] * p0 // back to scaled units
	}
	base := ev.eval(etaStar).dual
	for trial := 0; trial < 200; trial++ {
		perturbed := make([]float64, len(etaStar))
		for i := range perturbed {
			perturbed[i] = math.Max(0, etaStar[i]+src.Uniform(-0.3, 0.3))
		}
		if d := ev.eval(perturbed).dual; d < base-1e-7*math.Abs(base)-1e-10 {
			t.Fatalf("perturbation improved dual: %v < %v", d, base)
		}
	}
}
