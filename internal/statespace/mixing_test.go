package statespace

import (
	"math"
	"testing"

	"econcast/internal/model"
)

func TestJacobiEigenvaluesKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	ev := jacobiEigenvalues([][]float64{{2, 1}, {1, 2}})
	lo, hi := math.Min(ev[0], ev[1]), math.Max(ev[0], ev[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want 1 and 3", ev)
	}
	// A 3x3 with known spectrum: diag(5, -2, 7) rotated stays {5,-2,7}.
	ev3 := jacobiEigenvalues([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 7}})
	want := map[float64]bool{5: false, -2: false, 7: false}
	for _, v := range ev3 {
		for w := range want {
			if math.Abs(v-w) < 1e-10 {
				want[w] = true
			}
		}
	}
	for w, seen := range want {
		if !seen {
			t.Fatalf("eigenvalue %v missing from %v", w, ev3)
		}
	}
}

func TestMixingAnalysisBasics(t *testing.T) {
	nw := model.Homogeneous(3, 0.02, 1, 1)
	sp, err := Enumerate(nw)
	if err != nil {
		t.Fatal(err)
	}
	eta := []float64{1.5, 1.5, 1.5}
	mix, err := sp.MixingAnalysis(eta, 0.5, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	if !(mix.SLEM > 0 && mix.SLEM < 1) {
		t.Fatalf("SLEM %v outside (0,1)", mix.SLEM)
	}
	if mix.SpectralGap <= 0 {
		t.Fatalf("gap %v", mix.SpectralGap)
	}
	if mix.PiMin <= 0 || mix.PiMin > 1.0/float64(sp.Len())*10 {
		t.Fatalf("pi_min %v implausible", mix.PiMin)
	}
	// The eq. (30)-style bound must actually lower-bound pi_min.
	if mix.PiMin < mix.PiMinBound {
		t.Fatalf("pi_min %v below its analytical bound %v", mix.PiMin, mix.PiMinBound)
	}
	// |W| = 20 for N=3: conductance is computed exactly.
	if math.IsNaN(mix.Conductance) {
		t.Fatal("conductance not computed for small space")
	}
	if mix.Conductance <= 0 || mix.Conductance > 1 {
		t.Fatalf("conductance %v", mix.Conductance)
	}
	// Cheeger: 1 - theta_2 >= phi^2 / 2.
	if mix.SpectralGap < mix.Conductance*mix.Conductance/2-1e-12 {
		t.Fatalf("Cheeger violated: gap %v < phi^2/2 = %v",
			mix.SpectralGap, mix.Conductance*mix.Conductance/2)
	}
	// And the other direction of Cheeger: gap <= 2 phi.
	if mix.SpectralGap > 2*mix.Conductance+1e-12 {
		t.Fatalf("gap %v exceeds 2 phi = %v", mix.SpectralGap, 2*mix.Conductance)
	}
}

// Smaller sigma concentrates the distribution and slows mixing: the
// spectral gap must shrink — the quantitative face of the Fig. 4
// burstiness blow-up.
func TestMixingSlowsAsSigmaFalls(t *testing.T) {
	nw := model.Homogeneous(3, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	sp, err := Enumerate(nw)
	if err != nil {
		t.Fatal(err)
	}
	prevGap := math.Inf(1)
	for _, sigma := range []float64{1.0, 0.5, 0.25} {
		res, err := SolveP4(nw, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := sp.MixingAnalysis(res.Eta, sigma, model.Groupput)
		if err != nil {
			t.Fatal(err)
		}
		if mix.SpectralGap >= prevGap {
			t.Fatalf("sigma=%v: gap %v did not shrink from %v", sigma, mix.SpectralGap, prevGap)
		}
		prevGap = mix.SpectralGap
	}
}

// Power iteration (large-matrix path) must agree with Jacobi (small path).
func TestSlemPowerIterationMatchesJacobi(t *testing.T) {
	nw := model.Homogeneous(3, 0.02, 1, 0.7)
	sp, _ := Enumerate(nw)
	eta := []float64{0.8, 1.1, 1.4}
	const sigma = 0.6
	dist := sp.Gibbs(eta, sigma, model.Groupput)
	m := sp.Len()
	pi := make([]float64, m)
	for i := range pi {
		pi[i] = dist.Pi(i)
	}
	adj := make([][]mixEdge, m)
	q := 0.0
	for i := 0; i < m; i++ {
		total := 0.0
		for _, tr := range sp.Transitions(i, eta, sigma, model.Groupput) {
			adj[i] = append(adj[i], mixEdge{tr.To, tr.Rate})
			total += tr.Rate
		}
		q = math.Max(q, total)
	}
	q *= 1.05
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		stay := 1.0
		for _, e := range adj[i] {
			p := e.rate / q
			stay -= p
			a[i][e.to] += p * math.Sqrt(pi[i]/pi[e.to])
		}
		a[i][i] += stay
	}
	jacobi := slemOf(a, pi) // m = 20 <= 64: Jacobi path

	// Force the power-iteration path by inlining its logic through slemOf
	// on an artificially padded... simpler: call the deflated power
	// iteration directly by copying its steps.
	v1 := make([]float64, m)
	for i := range v1 {
		v1[i] = math.Sqrt(pi[i])
	}
	normalize(v1)
	x := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
	}
	deflate(x, v1)
	normalize(x)
	y := make([]float64, m)
	power := 0.0
	for iter := 0; iter < 20000; iter++ {
		matVec(a, x, y)
		deflate(y, v1)
		l := math.Sqrt(dot(y, y))
		for i := range y {
			y[i] /= l
		}
		x, y = y, x
		power = l
	}
	if math.Abs(jacobi-power) > 1e-6 {
		t.Fatalf("Jacobi SLEM %v vs power iteration %v", jacobi, power)
	}
}

func TestMixingAnalysisErrors(t *testing.T) {
	nw := model.Homogeneous(3, 0.02, 1, 1)
	sp, _ := Enumerate(nw)
	if _, err := sp.MixingAnalysis([]float64{1}, 0.5, model.Groupput); err == nil {
		t.Fatal("eta length mismatch accepted")
	}
	if _, err := sp.MixingAnalysis([]float64{1, 1, 1}, 0, model.Groupput); err == nil {
		t.Fatal("sigma=0 accepted")
	}
}

func TestConductanceLargeSpaceSkipped(t *testing.T) {
	nw := model.Homogeneous(5, 0.02, 1, 1) // |W| = 112 > cap
	sp, _ := Enumerate(nw)
	mix, err := sp.MixingAnalysis(repeat(1, 5), 0.5, model.Groupput)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(mix.Conductance) {
		t.Fatal("conductance computed for large space")
	}
	if !(mix.SLEM > 0 && mix.SLEM < 1) {
		t.Fatalf("SLEM %v", mix.SLEM)
	}
}
