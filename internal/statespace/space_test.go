package statespace

import (
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/rng"
)

func homogNet(n int, rho, l, x float64) *model.Network {
	return model.Homogeneous(n, rho, l, x)
}

func testNet5() *model.Network {
	return homogNet(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
}

func TestEnumerateCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		nw := homogNet(n, 1e-5, 5e-4, 5e-4)
		sp, err := Enumerate(nw)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Len() != model.NumStates(n) {
			t.Fatalf("N=%d: %d states, want %d", n, sp.Len(), model.NumStates(n))
		}
		// All states valid and distinct.
		seen := map[model.NetState]bool{}
		for i := 0; i < sp.Len(); i++ {
			s := sp.State(i)
			if !s.Valid(n) {
				t.Fatalf("invalid state %+v", s)
			}
			if seen[s] {
				t.Fatalf("duplicate state %+v", s)
			}
			seen[s] = true
			if sp.Index(s) != i {
				t.Fatalf("index roundtrip failed for %+v", s)
			}
		}
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	nw := homogNet(model.MaxNodesExact+1, 1e-5, 5e-4, 5e-4)
	if _, err := Enumerate(nw); err == nil {
		t.Fatal("expected error for oversized network")
	}
}

func TestIndexOfInvalidState(t *testing.T) {
	sp, _ := Enumerate(testNet5())
	if sp.Index(model.NetState{Transmitter: 2, Listeners: 1 << 2}) != -1 {
		t.Fatal("invalid state indexed")
	}
}

func TestGibbsNormalized(t *testing.T) {
	sp, _ := Enumerate(testNet5())
	src := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		eta := make([]float64, 5)
		for i := range eta {
			eta[i] = src.Uniform(0, 5)
		}
		for _, mode := range []model.Mode{model.Groupput, model.Anyput} {
			d := sp.Gibbs(eta, 0.5, mode)
			sum := 0.0
			for i := 0; i < sp.Len(); i++ {
				sum += d.Pi(i)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("pi sums to %v", sum)
			}
		}
	}
}

// Lemma 2: the Gibbs distribution (19) satisfies detailed balance with the
// transition rates (31), for arbitrary eta, both modes.
func TestDetailedBalance(t *testing.T) {
	src := rng.New(2)
	for _, n := range []int{2, 3, 4, 5} {
		// Heterogeneous network to exercise per-node terms.
		nodes := make([]model.Node, n)
		for i := range nodes {
			nodes[i] = model.Node{
				Budget:        src.Uniform(0.001, 0.01),
				ListenPower:   src.Uniform(0.1, 1),
				TransmitPower: src.Uniform(0.1, 1),
			}
		}
		nw := &model.Network{Nodes: nodes}
		sp, err := Enumerate(nw)
		if err != nil {
			t.Fatal(err)
		}
		eta := make([]float64, n)
		for i := range eta {
			eta[i] = src.Uniform(0, 3)
		}
		for _, mode := range []model.Mode{model.Groupput, model.Anyput} {
			for _, sigma := range []float64{0.25, 0.5, 1} {
				if v := sp.DetailedBalanceError(eta, sigma, mode); v > 1e-9 {
					t.Fatalf("N=%d mode=%v sigma=%v: detailed balance violation %v",
						n, mode, sigma, v)
				}
			}
		}
	}
}

// The closed-form stationary distribution must match the distribution
// computed directly from the transition rates by power iteration.
func TestStationaryMatchesPowerIteration(t *testing.T) {
	nw := homogNet(3, 0.02, 1, 0.7)
	sp, _ := Enumerate(nw)
	eta := []float64{1.2, 0.4, 2.0}
	const sigma = 0.5
	d := sp.Gibbs(eta, sigma, model.Groupput)
	pi := sp.StationaryByPowerIteration(eta, sigma, model.Groupput, 20000)
	for i := 0; i < sp.Len(); i++ {
		if math.Abs(pi[i]-d.Pi(i)) > 1e-6 {
			t.Fatalf("state %d: power iteration %v, Gibbs %v", i, pi[i], d.Pi(i))
		}
	}
}

func TestTransitionsStructure(t *testing.T) {
	nw := testNet5()
	sp, _ := Enumerate(nw)
	eta := []float64{1, 1, 1, 1, 1}
	for i := 0; i < sp.Len(); i++ {
		w := sp.State(i)
		trs := sp.Transitions(i, eta, 0.5, model.Groupput)
		if w.HasTransmitter() {
			if len(trs) != 1 {
				t.Fatalf("transmitting state has %d transitions", len(trs))
			}
		} else {
			// Every sleeper contributes 1 move; every listener contributes 2.
			want := 5 + w.NumListeners()
			if len(trs) != want {
				t.Fatalf("idle state with %d listeners has %d transitions, want %d",
					w.NumListeners(), len(trs), want)
			}
		}
		for _, tr := range trs {
			if tr.To < 0 || tr.To >= sp.Len() {
				t.Fatalf("transition to invalid state %d", tr.To)
			}
			if !(tr.Rate > 0) {
				t.Fatalf("non-positive rate %v", tr.Rate)
			}
		}
	}
}

func TestFractionsSumConsistency(t *testing.T) {
	sp, _ := Enumerate(testNet5())
	eta := []float64{2, 2, 2, 2, 2}
	d := sp.Gibbs(eta, 0.5, model.Groupput)
	alpha, beta := d.Fractions()
	// Sum of beta = P(some transmitter) <= 1.
	sumBeta := 0.0
	for _, b := range beta {
		sumBeta += b
		if b < 0 || b > 1 {
			t.Fatalf("beta out of range: %v", beta)
		}
	}
	if sumBeta > 1+1e-12 {
		t.Fatalf("sum beta = %v > 1", sumBeta)
	}
	for _, a := range alpha {
		if a < 0 || a > 1 {
			t.Fatalf("alpha out of range: %v", alpha)
		}
	}
	// Throughput equals sum over nodes of "listening while someone
	// transmits" mass; cross-check via direct state sum.
	direct := 0.0
	for i := 0; i < sp.Len(); i++ {
		w := sp.State(i)
		direct += w.Throughput(model.Groupput) * d.Pi(i)
	}
	if math.Abs(direct-d.Throughput()) > 1e-12 {
		t.Fatalf("throughput mismatch: %v vs %v", direct, d.Throughput())
	}
}

func TestGibbsPanics(t *testing.T) {
	sp, _ := Enumerate(testNet5())
	for _, fn := range []func(){
		func() { sp.Gibbs([]float64{1}, 0.5, model.Groupput) },
		func() { sp.Gibbs(make([]float64, 5), 0, model.Groupput) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEntropyAndObjective(t *testing.T) {
	sp, _ := Enumerate(homogNet(3, 0.02, 1, 1))
	// At eta = 0, sigma large, distribution is near-uniform over W:
	// entropy near log |W|.
	d := sp.Gibbs([]float64{0, 0, 0}, 100, model.Groupput)
	if math.Abs(d.Entropy()-math.Log(float64(sp.Len()))) > 0.01 {
		t.Fatalf("entropy %v, want ~%v", d.Entropy(), math.Log(float64(sp.Len())))
	}
	if d.P4Objective() <= d.Throughput() {
		t.Fatal("P4 objective should exceed raw throughput for sigma > 0")
	}
}
