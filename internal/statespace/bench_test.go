package statespace

import (
	"fmt"
	"testing"

	"econcast/internal/model"
)

// State-space benchmarks for the perf trajectory (BENCH_PR4.json): the
// Gibbs hot loop (allocation-free in steady state thanks to the Dist pool
// and the Enumerate-time caches), the exact dual solve, and the
// symmetry-reduced homogeneous solve.

func BenchmarkGibbs(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		sp, err := Enumerate(homogNetwork(n))
		if err != nil {
			b.Fatal(err)
		}
		eta := uniform(0.7, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := sp.Gibbs(eta, 0.5, model.Groupput)
				d.Release()
			}
		})
	}
}

func BenchmarkSolveP4Exact(b *testing.B) {
	nw := homogNetwork(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveP4(nw, 0.25, model.Groupput, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveP4Homogeneous(b *testing.B) {
	node := model.Node{Budget: 0.4, ListenPower: 0.8, TransmitPower: 1.0}
	for _, n := range []int{50, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveP4Homogeneous(n, node, 0.25, model.Groupput, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReducedGibbs(b *testing.B) {
	rs, err := EnumerateReduced(500)
	if err != nil {
		b.Fatal(err)
	}
	node := model.Node{Budget: 0.4, ListenPower: 0.8, TransmitPower: 1.0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs.Gibbs(1.2, node, 0.5, model.Groupput)
	}
}
