package statespace

import (
	"math"
	"testing"

	"econcast/internal/model"
)

func TestTypedMatchesHomogeneous(t *testing.T) {
	node := model.Node{Budget: 10 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 400 * model.MicroWatt}
	for _, mode := range []model.Mode{model.Groupput, model.Anyput} {
		hom, err := SolveP4Homogeneous(7, node, 0.4, mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		typed, err := SolveP4Typed([]int{7}, []model.Node{node}, 0.4, mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hom.Throughput-typed.Throughput) > 1e-9 {
			t.Fatalf("mode %v: homogeneous %v vs typed %v", mode, hom.Throughput, typed.Throughput)
		}
		if math.Abs(hom.Alpha[0]-typed.Alpha[0]) > 1e-9 {
			t.Fatalf("alpha mismatch: %v vs %v", hom.Alpha[0], typed.Alpha[0])
		}
	}
}

func TestTypedMatchesExactOnSmallMixedNetwork(t *testing.T) {
	a := model.Node{Budget: 5 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
	b := model.Node{Budget: 40 * model.MicroWatt, ListenPower: 450 * model.MicroWatt, TransmitPower: 550 * model.MicroWatt}
	nw := &model.Network{Nodes: []model.Node{a, a, a, b, b}}
	for _, sigma := range []float64{0.3, 0.6} {
		exact, err := SolveP4(nw, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		typed, err := SolveP4Typed([]int{3, 2}, []model.Node{a, b}, sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(exact.Throughput-typed.Throughput) / exact.Throughput; rel > 1e-6 {
			t.Fatalf("sigma=%v: exact %v vs typed %v", sigma, exact.Throughput, typed.Throughput)
		}
		// Per-node alphas: first three are type a, last two type b.
		if math.Abs(exact.Alpha[0]-typed.Alpha[0]) > 1e-6 ||
			math.Abs(exact.Alpha[4]-typed.Alpha[4]) > 1e-6 {
			t.Fatalf("alpha mismatch: %v vs %v", exact.Alpha, typed.Alpha)
		}
		if math.Abs(exact.BurstLength-typed.BurstLength)/exact.BurstLength > 1e-4 {
			t.Fatalf("burst mismatch: %v vs %v", exact.BurstLength, typed.BurstLength)
		}
	}
}

func TestTypedLargeNetworkConverges(t *testing.T) {
	a := model.Node{Budget: 5 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
	b := model.Node{Budget: 50 * model.MicroWatt, ListenPower: 600 * model.MicroWatt, TransmitPower: 400 * model.MicroWatt}
	res, err := SolveP4Typed([]int{25, 25}, []model.Node{a, b}, 0.4, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if len(res.Alpha) != 50 {
		t.Fatalf("alpha length %d", len(res.Alpha))
	}
	// Consumption respects per-type budgets.
	if res.Consumption[0] > a.Budget*1.001 || res.Consumption[49] > b.Budget*1.001 {
		t.Fatalf("consumption violated: %v / %v", res.Consumption[0], res.Consumption[49])
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

// SolveP4 must auto-dispatch large type-structured heterogeneous networks
// to the typed solver (previously an error).
func TestSolveP4AutoDispatchTyped(t *testing.T) {
	a := model.Node{Budget: 5 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
	b := model.Node{Budget: 50 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
	nodes := make([]model.Node, 0, 30)
	// Interleave so the permutation logic is exercised.
	for i := 0; i < 15; i++ {
		nodes = append(nodes, a, b)
	}
	nw := &model.Network{Nodes: nodes}
	res, err := SolveP4(nw, 0.4, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 is type a (5 uW), node 1 type b (50 uW): consumption must
	// track each node's own budget in the original order.
	if math.Abs(res.Consumption[0]-a.Budget)/a.Budget > 1e-3 {
		t.Fatalf("node 0 consumption %v, budget %v", res.Consumption[0], a.Budget)
	}
	if math.Abs(res.Consumption[1]-b.Budget)/b.Budget > 1e-3 {
		t.Fatalf("node 1 consumption %v, budget %v", res.Consumption[1], b.Budget)
	}
	if res.Alpha[1] <= res.Alpha[0] {
		t.Fatal("richer node should listen more")
	}
}

func TestTypedErrors(t *testing.T) {
	node := model.Node{Budget: 1, ListenPower: 1, TransmitPower: 1}
	if _, err := SolveP4Typed([]int{1, 2}, []model.Node{node}, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SolveP4Typed([]int{0}, []model.Node{node}, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := SolveP4Typed([]int{2}, []model.Node{node}, 0, model.Groupput, nil); err == nil {
		t.Fatal("sigma=0 accepted")
	}
	if _, err := SolveP4Typed([]int{2}, []model.Node{{}}, 0.5, model.Groupput, nil); err == nil {
		t.Fatal("invalid node accepted")
	}
}
