package statespace

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// P4Options tunes the dual solver for problem (P4).
type P4Options struct {
	// MaxIter bounds the number of dual iterations (default 600).
	MaxIter int
	// Tol is the relative KKT tolerance on per-node power consumption
	// (default 1e-6).
	Tol float64
}

func (o *P4Options) withDefaults() P4Options {
	out := P4Options{MaxIter: 600, Tol: 1e-6}
	if o != nil {
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
	}
	return out
}

// P4Result is the solution of the entropy-regularized throughput
// maximization (P4): the achievable throughput T^sigma of EconCast and the
// associated optimal operating point.
type P4Result struct {
	Throughput  float64   // T^sigma = sum_w pi*_w T_w
	Alpha       []float64 // optimal listen fractions
	Beta        []float64 // optimal transmit fractions
	Eta         []float64 // optimal Lagrange multipliers (unscaled)
	Consumption []float64 // mean power draw per node (Watts)
	BurstLength float64   // analytical average burst length (eqs. 34-35)
	DualValue   float64   // D(eta*) = sigma log Z + eta . rho (scaled units)
	Iterations  int
	Converged   bool
}

// evaluator abstracts the Gibbs computation so the dual descent is shared
// between the exact enumeration and the homogeneous aggregation. All
// quantities are in scaled power units (max power level = 1).
type evaluator interface {
	// eval returns the dual value D(eta), per-node power consumption,
	// listen/transmit fractions, throughput, and burst length at eta.
	eval(eta []float64) evalResult
	budgets() []float64 // scaled budgets rho'
	dims() int          // number of dual variables
	sigma() float64
}

type evalResult struct {
	dual  float64
	cons  []float64
	alpha []float64
	beta  []float64
	thr   float64
	burst float64
}

// solveDual minimizes D(eta) over eta >= 0 using a log-domain
// diagonally-preconditioned descent with backtracking. The direction
// d_i = sigma*ln(cons_i/rho_i) is a Newton-like step for the approximately
// exponential dependence of consumption on eta_i, and the dual value
// D(eta) = sigma*logZ + eta.rho provides an exact line-search merit.
func solveDual(ev evaluator, opts P4Options) (eta []float64, res evalResult, iters int, converged bool) {
	n := ev.dims()
	rho := ev.budgets()
	sigma := ev.sigma()
	eta = make([]float64, n)
	res = ev.eval(eta)
	dir := make([]float64, n)
	trial := make([]float64, n)
	for iters = 1; iters <= opts.MaxIter; iters++ {
		// KKT residual: consumption must equal budget where eta_i > 0 and
		// not exceed it where eta_i = 0.
		kkt := 0.0
		for i := 0; i < n; i++ {
			var v float64
			if eta[i] > 0 {
				v = math.Abs(res.cons[i]-rho[i]) / rho[i]
			} else {
				v = math.Max(0, res.cons[i]-rho[i]) / rho[i]
			}
			if v > kkt {
				kkt = v
			}
		}
		if kkt < opts.Tol {
			converged = true
			return eta, res, iters, true
		}
		for i := 0; i < n; i++ {
			dir[i] = sigma * math.Log(res.cons[i]/rho[i])
			if eta[i] == 0 && dir[i] < 0 { //lint:allow floateq projection boundary: eta is clamped to exactly 0
				dir[i] = 0
			}
		}
		step := 1.0
		accepted := false
		for try := 0; try < 40; try++ {
			for i := 0; i < n; i++ {
				trial[i] = math.Max(0, eta[i]+step*dir[i])
			}
			cand := ev.eval(trial)
			if cand.dual <= res.dual {
				copy(eta, trial)
				res = cand
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			// The merit is flat to machine precision; treat as converged to
			// the achievable accuracy.
			return eta, res, iters, kkt < math.Sqrt(opts.Tol)
		}
	}
	return eta, res, opts.MaxIter, false
}

// exactEval evaluates the Gibbs distribution over an enumerated space with
// power levels scaled by 1/p0.
type exactEval struct {
	space *Space // built over the scaled network
	mode  model.Mode
	sig   float64
	rho   []float64
}

func (e *exactEval) dims() int          { return e.space.nw.N() }
func (e *exactEval) budgets() []float64 { return e.rho }
func (e *exactEval) sigma() float64     { return e.sig }

func (e *exactEval) eval(eta []float64) evalResult {
	d := e.space.Gibbs(eta, e.sig, e.mode)
	alpha, beta := d.Fractions()
	cons := make([]float64, len(alpha))
	dual := e.sig * d.LogZ()
	for i := range cons {
		node := e.space.nw.Nodes[i]
		cons[i] = alpha[i]*node.ListenPower + beta[i]*node.TransmitPower
		dual += eta[i] * e.rho[i]
	}
	thr := d.Throughput()
	burst := d.AvgBurstLength()
	d.Release()
	return evalResult{
		dual:  dual,
		cons:  cons,
		alpha: alpha,
		beta:  beta,
		thr:   thr,
		burst: burst,
	}
}

// scaleFactor returns the largest power level in the network, used to
// rescale the problem to O(1) magnitudes for the dual descent.
func scaleFactor(nw *model.Network) float64 {
	p0 := 0.0
	for _, n := range nw.Nodes {
		p0 = math.Max(p0, math.Max(n.ListenPower, n.TransmitPower))
	}
	return p0
}

func scaledNetwork(nw *model.Network, p0 float64) *model.Network {
	nodes := make([]model.Node, nw.N())
	for i, n := range nw.Nodes {
		nodes[i] = model.Node{
			Budget:        n.Budget / p0,
			ListenPower:   n.ListenPower / p0,
			TransmitPower: n.TransmitPower / p0,
		}
	}
	return &model.Network{Nodes: nodes}
}

// SolveP4 computes the achievable throughput T^sigma of EconCast by solving
// the entropy-regularized problem (P4) through its Lagrangian dual. For
// networks small enough it uses exact state enumeration; larger
// homogeneous networks use the aggregated listener-count representation;
// larger heterogeneous networks that decompose into a few identical-node
// types use the typed aggregation (SolveP4Typed). Only large networks with
// many distinct node types are rejected.
func SolveP4(nw *model.Network, sigma float64, mode model.Mode, opts *P4Options) (*P4Result, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("statespace: sigma %v must be positive", sigma)
	}
	if nw.N() <= model.MaxNodesExact {
		return solveP4Exact(nw, sigma, mode, opts.withDefaults())
	}
	if nw.Homogeneous() {
		node := nw.Nodes[0]
		return SolveP4Homogeneous(nw.N(), node, sigma, mode, opts)
	}
	// Large heterogeneous networks are tractable when they decompose into
	// a few node types.
	if counts, types, perm, ok := groupTypes(nw); ok {
		res, err := SolveP4Typed(counts, types, sigma, mode, opts)
		if err != nil {
			return nil, err
		}
		return permuteResult(res, perm), nil
	}
	return nil, fmt.Errorf("statespace: heterogeneous network with N=%d exceeds exact limit %d and has too many distinct node types",
		nw.N(), model.MaxNodesExact)
}

// groupTypes decomposes a network into identical-node types. perm[i] gives
// the position of original node i in the type-major ordering SolveP4Typed
// reports. ok is false when the decomposition would not be tractable.
func groupTypes(nw *model.Network) (counts []int, types []model.Node, perm []int, ok bool) {
	index := map[model.Node]int{}
	for _, nd := range nw.Nodes {
		if _, seen := index[nd]; !seen {
			index[nd] = len(types)
			types = append(types, nd)
			counts = append(counts, 0)
		}
		counts[index[nd]]++
	}
	if len(types) > 8 {
		return nil, nil, nil, false
	}
	classes := len(types) + 1
	for _, c := range counts {
		classes *= c + 1
	}
	if classes > 1<<20 {
		return nil, nil, nil, false
	}
	// Type-major position of each original node.
	offset := make([]int, len(types))
	for t := 1; t < len(types); t++ {
		offset[t] = offset[t-1] + counts[t-1]
	}
	next := append([]int(nil), offset...)
	perm = make([]int, nw.N())
	for i, nd := range nw.Nodes {
		t := index[nd]
		perm[i] = next[t]
		next[t]++
	}
	return counts, types, perm, true
}

// permuteResult reorders per-node slices from type-major order back to the
// original node order.
func permuteResult(res *P4Result, perm []int) *P4Result {
	reorder := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, p := range perm {
			out[i] = v[p]
		}
		return out
	}
	res.Alpha = reorder(res.Alpha)
	res.Beta = reorder(res.Beta)
	res.Eta = reorder(res.Eta)
	res.Consumption = reorder(res.Consumption)
	return res
}

func solveP4Exact(nw *model.Network, sigma float64, mode model.Mode, opts P4Options) (*P4Result, error) {
	p0 := scaleFactor(nw)
	scaled := scaledNetwork(nw, p0)
	sp, err := Enumerate(scaled)
	if err != nil {
		return nil, err
	}
	rho := make([]float64, nw.N())
	for i, n := range scaled.Nodes {
		rho[i] = n.Budget
	}
	ev := &exactEval{space: sp, mode: mode, sig: sigma, rho: rho}
	eta, res, iters, converged := solveDual(ev, opts)
	return finishResult(eta, res, iters, converged, p0), nil
}

func finishResult(eta []float64, res evalResult, iters int, converged bool, p0 float64) *P4Result {
	unscaled := make([]float64, len(eta))
	cons := make([]float64, len(res.cons))
	for i := range eta {
		unscaled[i] = eta[i] / p0
		cons[i] = res.cons[i] * p0
	}
	return &P4Result{
		Throughput:  res.thr,
		Alpha:       res.alpha,
		Beta:        res.beta,
		Eta:         unscaled,
		Consumption: cons,
		BurstLength: res.burst,
		DualValue:   res.dual,
		Iterations:  iters,
		Converged:   converged,
	}
}

// homogEval evaluates the Gibbs distribution of a homogeneous network on
// the symmetry-reduced class space (ReducedSpace), supporting arbitrary N.
type homogEval struct {
	node model.Node // scaled
	mode model.Mode
	sig  float64
	rho  []float64
	rs   *ReducedSpace
}

func newHomogEval(n int, node model.Node, sigma float64, mode model.Mode) *homogEval {
	rs, err := EnumerateReduced(n)
	if err != nil {
		panic(err) // n >= 1 is checked by the caller
	}
	return &homogEval{
		node: node,
		mode: mode,
		sig:  sigma,
		rho:  []float64{node.Budget},
		rs:   rs,
	}
}

func (e *homogEval) dims() int          { return 1 }
func (e *homogEval) budgets() []float64 { return e.rho }
func (e *homogEval) sigma() float64     { return e.sig }

func (e *homogEval) eval(eta []float64) evalResult {
	h := eta[0]
	d := e.rs.Gibbs(h, e.node, e.sig, e.mode)
	alpha, beta := d.Fractions()
	cons := alpha*e.node.ListenPower + beta*e.node.TransmitPower
	return evalResult{
		// The scalar h stands for all n nodes' multipliers, so the dual
		// term eta . rho is n * h * rho.
		dual:  e.sig*d.LogZ() + float64(e.rs.N())*h*e.node.Budget,
		cons:  []float64{cons},
		alpha: []float64{alpha},
		beta:  []float64{beta},
		thr:   d.Throughput(),
		burst: d.AvgBurstLength(),
	}
}

// SolveP4Homogeneous solves (P4) for n identical nodes using the aggregated
// listener-count representation; it supports arbitrary n.
func SolveP4Homogeneous(n int, node model.Node, sigma float64, mode model.Mode, opts *P4Options) (*P4Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("statespace: n=%d must be positive", n)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("statespace: sigma %v must be positive", sigma)
	}
	nw := &model.Network{Nodes: []model.Node{node}}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	p0 := math.Max(node.ListenPower, node.TransmitPower)
	scaled := model.Node{
		Budget:        node.Budget / p0,
		ListenPower:   node.ListenPower / p0,
		TransmitPower: node.TransmitPower / p0,
	}
	ev := newHomogEval(n, scaled, sigma, mode)
	eta, res, iters, converged := solveDual(ev, opts.withDefaults())
	out := finishResult(eta, res, iters, converged, p0)
	// Expand the shared per-node quantities to length n for a uniform API.
	out.Alpha = repeat(out.Alpha[0], n)
	out.Beta = repeat(out.Beta[0], n)
	out.Eta = repeat(out.Eta[0], n)
	out.Consumption = repeat(out.Consumption[0], n)
	return out, nil
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Algorithm1Trace records the multiplier trajectory of the paper's literal
// Algorithm 1 (gradient descent with delta_k = delta0/k), used for the
// convergence ablation.
type Algorithm1Trace struct {
	Eta        [][]float64 // eta after each iteration (scaled units)
	Violation  []float64   // max relative power violation per iteration
	Throughput []float64   // T^sigma estimate per iteration
}

// HarmonicDelta returns the paper's Algorithm 1 step schedule
// delta_k = delta0 / k.
func HarmonicDelta(delta0 float64) func(k int) float64 {
	return func(k int) float64 { return delta0 / float64(k) }
}

// ConstantDelta returns the constant step schedule the paper recommends for
// practice in §V-F.
func ConstantDelta(delta float64) func(k int) float64 {
	return func(int) float64 { return delta }
}

// SolveAlgorithm1 runs the paper's Algorithm 1 on the scaled problem:
// eta_i(k) = [eta_i(k-1) - delta_k * (rho_i - cons_i(k))]^+, with the given
// step schedule (HarmonicDelta reproduces the paper verbatim; ConstantDelta
// matches the practical recommendation of §V-F). It is slower than
// SolveP4's line-searched descent and is provided to reproduce the paper's
// convergence behaviour and the delta/tau tradeoff discussion.
func SolveAlgorithm1(nw *model.Network, sigma float64, mode model.Mode, delta func(k int) float64, iters int) (*P4Result, *Algorithm1Trace, error) {
	if err := nw.Validate(); err != nil {
		return nil, nil, err
	}
	if nw.N() > model.MaxNodesExact {
		return nil, nil, fmt.Errorf("statespace: Algorithm 1 requires exact enumeration (N <= %d)", model.MaxNodesExact)
	}
	p0 := scaleFactor(nw)
	scaled := scaledNetwork(nw, p0)
	sp, err := Enumerate(scaled)
	if err != nil {
		return nil, nil, err
	}
	rho := make([]float64, nw.N())
	for i, n := range scaled.Nodes {
		rho[i] = n.Budget
	}
	ev := &exactEval{space: sp, mode: mode, sig: sigma, rho: rho}
	eta := make([]float64, nw.N())
	trace := &Algorithm1Trace{}
	var res evalResult
	for k := 1; k <= iters; k++ {
		res = ev.eval(eta)
		dk := delta(k)
		worst := 0.0
		for i := range eta {
			eta[i] = math.Max(0, eta[i]-dk*(rho[i]-res.cons[i]))
			if v := math.Abs(res.cons[i]-rho[i]) / rho[i]; v > worst {
				worst = v
			}
		}
		trace.Eta = append(trace.Eta, append([]float64(nil), eta...))
		trace.Violation = append(trace.Violation, worst)
		trace.Throughput = append(trace.Throughput, res.thr)
	}
	res = ev.eval(eta)
	out := finishResult(eta, res, iters, trace.Violation[len(trace.Violation)-1] < 0.05, p0)
	return out, trace, nil
}
