package statespace

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// ReducedSpace is the symmetry-reduced state space of a homogeneous clique.
// In a clique of n identical nodes the Gibbs weight of a state depends only
// on whether a transmitter is present and on how many nodes listen, so the
// (n+2)*2^(n-1) collision-free states collapse into 2n+1 exchangeability
// classes: (no transmitter, c listeners) for c in 0..n and (one
// transmitter, c listeners) for c in 0..n-1. Class multiplicities are
// binomial — C(n,c) and n*C(n-1,c) respectively — kept in log form so the
// representation supports arbitrary n, far past the exact-enumeration
// limit.
type ReducedSpace struct {
	n       int
	lgBinom []float64 // lgBinom[c] = log C(n, c)
	lgBm1   []float64 // lgBm1[c]  = log C(n-1, c)
	scratch *ReducedDist
}

// EnumerateReduced builds the reduced class space for n identical nodes.
func EnumerateReduced(n int) (*ReducedSpace, error) {
	if n < 1 {
		return nil, fmt.Errorf("statespace: n=%d must be positive", n)
	}
	rs := &ReducedSpace{
		n:       n,
		lgBinom: logBinomials(n),
		lgBm1:   logBinomials(n - 1),
	}
	rs.scratch = &ReducedDist{
		space: rs,
		logW:  make([]float64, rs.Classes()),
		p:     make([]float64, rs.Classes()),
	}
	return rs, nil
}

func logBinomials(n int) []float64 {
	out := make([]float64, n+1)
	lgN, _ := math.Lgamma(float64(n + 1))
	for c := 0; c <= n; c++ {
		lgC, _ := math.Lgamma(float64(c + 1))
		lgNC, _ := math.Lgamma(float64(n - c + 1))
		out[c] = lgN - lgC - lgNC
	}
	return out
}

// N returns the number of nodes.
func (rs *ReducedSpace) N() int { return rs.n }

// Classes returns the number of exchangeability classes, 2n+1.
func (rs *ReducedSpace) Classes() int { return 2*rs.n + 1 }

// ClassState describes class i: whether a transmitter is present and the
// listener count. Classes 0..n are the transmitter-free listener subsets;
// classes n+1..2n have one transmitter and c = i-(n+1) listeners.
func (rs *ReducedSpace) ClassState(i int) (tx bool, listeners int) {
	if i <= rs.n {
		return false, i
	}
	return true, i - rs.n - 1
}

// ClassSize returns the exact number of full states collapsed into class i.
// It overflows for n beyond ~60; the analysis itself only ever uses the log
// multiplicities, so this is for validation against full enumeration.
func (rs *ReducedSpace) ClassSize(i int) int64 {
	tx, c := rs.ClassState(i)
	if !tx {
		return binom64(rs.n, c)
	}
	return int64(rs.n) * binom64(rs.n-1, c)
}

// binom64 computes C(n, k) exactly in int64 arithmetic.
func binom64(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 1; i <= k; i++ {
		out = out * int64(n-k+i) / int64(i)
	}
	return out
}

// classThroughput returns T_w for any state of class i under the mode.
func (rs *ReducedSpace) classThroughput(i int, mode model.Mode) float64 {
	tx, c := rs.ClassState(i)
	if !tx || c == 0 {
		return 0
	}
	if mode == model.Anyput {
		return 1
	}
	return float64(c)
}

// ReducedDist is the Gibbs distribution of eq. (19) aggregated onto the
// exchangeability classes: p[i] is the total probability mass of class i
// (class multiplicity included), for a homogeneous node with a shared
// scalar multiplier eta. The space reuses one ReducedDist across Gibbs
// calls, so a distribution is only valid until the next Gibbs call on the
// same space.
type ReducedDist struct {
	space *ReducedSpace
	node  model.Node
	mode  model.Mode
	sigma float64
	logW  []float64 // log of the un-normalized class mass
	p     []float64 // normalized class mass
	logZ  float64
}

// Gibbs computes the class-aggregated stationary distribution for n
// identical nodes with per-node multiplier eta. The normalizing constant
// equals the full space's exactly (each class contributes multiplicity
// times the shared per-state weight), which is what the exact n<=8
// validation pins.
func (rs *ReducedSpace) Gibbs(eta float64, node model.Node, sigma float64, mode model.Mode) *ReducedDist {
	if sigma <= 0 {
		panic("statespace: sigma must be positive")
	}
	d := rs.scratch
	d.node = node
	d.mode = mode
	d.sigma = sigma
	n := rs.n
	l, x := node.ListenPower, node.TransmitPower
	inv := 1 / sigma
	for c := 0; c <= n; c++ {
		d.logW[c] = rs.lgBinom[c] - float64(c)*eta*l*inv
	}
	logN := math.Log(float64(n))
	for c := 0; c <= n-1; c++ {
		tw := rs.classThroughput(n+1+c, mode)
		d.logW[n+1+c] = logN + rs.lgBm1[c] + (tw-float64(c)*eta*l-eta*x)*inv
	}
	d.logZ = logSumExp(d.logW)
	for i := range d.logW {
		d.p[i] = math.Exp(d.logW[i] - d.logZ)
	}
	return d
}

// LogZ returns log Z_eta, identical to the full space's normalizer.
func (d *ReducedDist) LogZ() float64 { return d.logZ }

// ClassProb returns the total probability mass of class i.
func (d *ReducedDist) ClassProb(i int) float64 { return d.p[i] }

// Throughput returns sum_w pi_w T_w under the distribution's mode.
func (d *ReducedDist) Throughput() float64 {
	sum := 0.0
	for i, p := range d.p {
		if tw := d.space.classThroughput(i, d.mode); tw > 0 {
			sum += tw * p
		}
	}
	return sum
}

// Fractions returns the per-node listen and transmit time fractions, the
// same for every node by exchangeability: alpha = E[listeners]/n and
// beta = P[transmitting]/n.
func (d *ReducedDist) Fractions() (alpha, beta float64) {
	n := d.space.n
	var eListen, pTx float64
	for i, p := range d.p {
		tx, c := d.space.ClassState(i)
		eListen += float64(c) * p
		if tx {
			pTx += p
		}
	}
	return eListen / float64(n), pTx / float64(n)
}

// AvgBurstLength returns the analytical average burst length, eq. (34) for
// groupput and eq. (35) for anyput.
func (d *ReducedDist) AvgBurstLength() float64 {
	if d.mode == model.Anyput {
		return AnyputBurstLength(d.sigma)
	}
	num := 0.0
	den := 0.0
	for i, p := range d.p {
		tx, c := d.space.ClassState(i)
		if !tx || c < 1 {
			continue
		}
		num += p
		den += p * math.Exp(-float64(c)/d.sigma)
	}
	if den == 0 { //lint:allow floateq exact-zero denominator guard before division
		return math.Inf(1)
	}
	return num / den
}

// Entropy returns the entropy of the *full* underlying distribution,
// -sum_w pi_w log pi_w, recovered from the class masses: states within a
// class are equiprobable, so the class contributes p*(log mult - log p)
// with mult its multiplicity.
func (d *ReducedDist) Entropy() float64 {
	h := 0.0
	for i, p := range d.p {
		if p <= 0 {
			continue
		}
		var lgMult float64
		tx, c := d.space.ClassState(i)
		if !tx {
			lgMult = d.space.lgBinom[c]
		} else {
			lgMult = math.Log(float64(d.space.n)) + d.space.lgBm1[c]
		}
		h += p * (lgMult - math.Log(p))
	}
	return h
}
