package statespace

import (
	"math"
	"testing"

	"econcast/internal/model"
)

// TestReducedClassSizesExact pins the combinatorial core of the symmetry
// reduction: for every n <= 8 the class multiplicities partition the full
// collision-free state space exactly, class by class and in total.
func TestReducedClassSizesExact(t *testing.T) {
	for n := 1; n <= 8; n++ {
		rs, err := EnumerateReduced(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := rs.Classes(), 2*n+1; got != want {
			t.Fatalf("n=%d: Classes()=%d, want %d", n, got, want)
		}
		nw := homogNetwork(n)
		sp, err := Enumerate(nw)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		counts := make([]int64, rs.Classes())
		for i := 0; i < sp.Len(); i++ {
			counts[classOf(sp.State(i), n)]++
		}
		var total int64
		for k := 0; k < rs.Classes(); k++ {
			if got := rs.ClassSize(k); got != counts[k] {
				tx, c := rs.ClassState(k)
				t.Errorf("n=%d class (tx=%v,c=%d): ClassSize=%d, enumerated %d",
					n, tx, c, got, counts[k])
			}
			total += rs.ClassSize(k)
		}
		if want := int64(model.NumStates(n)); total != want {
			t.Errorf("n=%d: class sizes sum to %d, want |W|=%d", n, total, want)
		}
	}
}

// TestReducedGibbsMatchesFullEnumeration validates the reduced Gibbs
// distribution against the full enumeration for n <= 8: the normalizer,
// class masses, throughput, time fractions, burst length, and entropy must
// all agree to floating-point accuracy.
func TestReducedGibbsMatchesFullEnumeration(t *testing.T) {
	node := model.Node{Budget: 0.4, ListenPower: 0.8, TransmitPower: 1.0}
	for n := 1; n <= 8; n++ {
		rs, err := EnumerateReduced(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sp, err := Enumerate(homogNetworkWith(n, node))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, mode := range []model.Mode{model.Groupput, model.Anyput} {
			for _, sigma := range []float64{0.25, 1, 3} {
				for _, eta := range []float64{0, 0.7, 2.5} {
					full := sp.Gibbs(uniform(eta, n), sigma, mode)
					red := rs.Gibbs(eta, node, sigma, mode)

					check := func(name string, got, want float64) {
						tol := 1e-11 * math.Max(1, math.Abs(want))
						if math.Abs(got-want) > tol {
							t.Errorf("n=%d mode=%v sigma=%v eta=%v %s: reduced %v, full %v",
								n, mode, sigma, eta, name, got, want)
						}
					}
					check("logZ", red.LogZ(), full.LogZ())
					check("throughput", red.Throughput(), full.Throughput())
					check("burst", red.AvgBurstLength(), full.AvgBurstLength())
					check("entropy", red.Entropy(), full.Entropy())

					alpha, beta := red.Fractions()
					fa, fb := full.Fractions()
					for i := 0; i < n; i++ {
						check("alpha", alpha, fa[i])
						check("beta", beta, fb[i])
					}

					classMass := make([]float64, rs.Classes())
					for i := 0; i < sp.Len(); i++ {
						classMass[classOf(sp.State(i), n)] += full.Pi(i)
					}
					for k := range classMass {
						check("classProb", red.ClassProb(k), classMass[k])
					}
					full.Release()
				}
			}
		}
	}
}

// TestReducedLargeN sanity-checks the representation far beyond the exact
// limit: class masses normalize and the n->inf anyput ceiling holds.
func TestReducedLargeN(t *testing.T) {
	rs, err := EnumerateReduced(500)
	if err != nil {
		t.Fatal(err)
	}
	node := model.Node{Budget: 0.4, ListenPower: 0.8, TransmitPower: 1.0}
	d := rs.Gibbs(1.2, node, 0.5, model.Anyput)
	sum := 0.0
	for k := 0; k < rs.Classes(); k++ {
		sum += d.ClassProb(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("class masses sum to %v, want 1", sum)
	}
	if thr := d.Throughput(); thr < 0 || thr > 1 {
		t.Fatalf("anyput throughput %v outside [0,1]", thr)
	}
}

func classOf(s model.NetState, n int) int {
	c := 0
	for b := s.Listeners; b != 0; b &= b - 1 {
		c++
	}
	if !s.HasTransmitter() {
		return c
	}
	return n + 1 + c
}

func homogNetwork(n int) *model.Network {
	return homogNetworkWith(n, model.Node{Budget: 0.5, ListenPower: 0.9, TransmitPower: 1.0})
}

func homogNetworkWith(n int, node model.Node) *model.Network {
	nodes := make([]model.Node, n)
	for i := range nodes {
		nodes[i] = node
	}
	return &model.Network{Nodes: nodes}
}

func uniform(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
