package statespace

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// Mixing quantifies how fast the EconCast network chain converges, the
// machinery behind the Appendix D convergence proof: the uniformized
// chain's second largest eigenvalue modulus (SLEM) theta_2, the spectral
// gap, the stationary minimum and its analytical lower bound (eq. 30), and
// — for small spaces — the exact conductance phi with the Cheeger bound
// 1 - theta_2 >= phi^2/2 used in eq. (33).
type Mixing struct {
	SLEM        float64 // theta_2
	SpectralGap float64 // 1 - theta_2
	Uniform     float64 // uniformization constant q >= max outflow rate
	PiMin       float64 // smallest stationary probability
	PiMinBound  float64 // analytical lower bound in the style of eq. (30)

	// Conductance is the exact chain conductance phi, computed only when
	// the state space is small enough to enumerate cuts; NaN otherwise.
	Conductance float64
}

// maxConductanceStates bounds the exact-cut enumeration (2^|W| subsets).
const maxConductanceStates = 22

// MixingAnalysis computes the Mixing quantities for the chain at frozen
// multipliers eta.
func (sp *Space) MixingAnalysis(eta []float64, sigma float64, mode model.Mode) (*Mixing, error) {
	if len(eta) != sp.nw.N() {
		return nil, fmt.Errorf("statespace: eta length %d != N %d", len(eta), sp.nw.N())
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("statespace: sigma must be positive")
	}
	m := sp.Len()
	dist := sp.Gibbs(eta, sigma, mode)
	pi := make([]float64, m)
	piMin := math.Inf(1)
	for i := range pi {
		pi[i] = dist.Pi(i)
		if pi[i] < piMin {
			piMin = pi[i]
		}
	}

	// Uniformized transition matrix P = I + Q/q.
	adj := make([][]mixEdge, m)
	q := 0.0
	for i := 0; i < m; i++ {
		total := 0.0
		for _, tr := range sp.Transitions(i, eta, sigma, mode) {
			adj[i] = append(adj[i], mixEdge{tr.To, tr.Rate})
			total += tr.Rate
		}
		if total > q {
			q = total
		}
	}
	q *= 1.05

	// Reversibility makes A = D^{1/2} P D^{-1/2} symmetric with leading
	// eigenvector sqrt(pi) at eigenvalue 1; the SLEM is A's second largest
	// eigenvalue modulus.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		stay := 1.0
		for _, e := range adj[i] {
			p := e.rate / q
			stay -= p
			a[i][e.to] += p * math.Sqrt(pi[i]/pi[e.to])
		}
		a[i][i] += stay
	}
	slem := slemOf(a, pi)

	out := &Mixing{
		SLEM:        slem,
		SpectralGap: 1 - slem,
		Uniform:     q,
		PiMin:       piMin,
		PiMinBound:  sp.piMinBound(eta, sigma),
		Conductance: math.NaN(),
	}
	if m <= maxConductanceStates {
		out.Conductance = conductance(pi, adj, q, m)
	}
	return out, nil
}

// piMinBound is the static form of the Appendix D eq. (30) bound:
// pi_w * Z >= exp(-N*Cbar*max(eta)/sigma) and Z <= |W| * exp(N/sigma),
// where Cbar is the largest power level.
func (sp *Space) piMinBound(eta []float64, sigma float64) float64 {
	cbar := 0.0
	maxEta := 0.0
	for i, n := range sp.nw.Nodes {
		cbar = math.Max(cbar, math.Max(n.ListenPower, n.TransmitPower))
		maxEta = math.Max(maxEta, eta[i])
	}
	n := float64(sp.nw.N())
	return math.Exp(-n*cbar*maxEta/sigma) / (float64(sp.Len()) * math.Exp(n/sigma))
}

// slemOf returns the second largest eigenvalue modulus of the symmetric
// matrix a whose leading eigenvector is sqrt(pi) (eigenvalue 1). Small
// matrices use a full Jacobi decomposition; larger ones use deflated
// power iteration.
func slemOf(a [][]float64, pi []float64) float64 {
	m := len(a)
	if m <= 64 {
		ev := jacobiEigenvalues(a)
		// Drop the eigenvalue closest to 1 (the principal one), return the
		// largest remaining modulus.
		principal := 0
		for i, v := range ev {
			if math.Abs(v-1) < math.Abs(ev[principal]-1) {
				principal = i
			}
		}
		slem := 0.0
		for i, v := range ev {
			if i != principal && math.Abs(v) > slem {
				slem = math.Abs(v)
			}
		}
		return slem
	}
	// Deflated power iteration.
	v1 := make([]float64, m)
	for i := range v1 {
		v1[i] = math.Sqrt(pi[i])
	}
	normalize(v1)
	x := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1)) // deterministic pseudo-random start
	}
	deflate(x, v1)
	normalize(x)
	y := make([]float64, m)
	lambda := 0.0
	for iter := 0; iter < 5000; iter++ {
		matVec(a, x, y)
		deflate(y, v1)
		l := math.Sqrt(dot(y, y))
		if l == 0 { //lint:allow floateq exact zero vector; any nonzero norm is usable
			return 0
		}
		for i := range y {
			y[i] /= l
		}
		x, y = y, x
		if math.Abs(l-lambda) < 1e-12 {
			lambda = l
			break
		}
		lambda = l
	}
	return lambda
}

func matVec(a [][]float64, x, out []float64) {
	for i := range a {
		s := 0.0
		row := a[i]
		for j, v := range row {
			if v != 0 { //lint:allow floateq sparsity skip over exact structural zeros
				s += v * x[j]
			}
		}
		out[i] = s
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) {
	n := math.Sqrt(dot(x, x))
	if n == 0 { //lint:allow floateq exact zero vector cannot be normalized
		return
	}
	for i := range x {
		x[i] /= n
	}
}

func deflate(x, v []float64) {
	c := dot(x, v)
	for i := range x {
		x[i] -= c * v[i]
	}
}

// jacobiEigenvalues computes all eigenvalues of a (copied) symmetric
// matrix by cyclic Jacobi rotations.
func jacobiEigenvalues(src [][]float64) []float64 {
	m := len(src)
	a := make([][]float64, m)
	for i := range a {
		a[i] = append([]float64(nil), src[i]...)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < m; p++ {
			for q := p + 1; q < m; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < m; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < m; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
			}
		}
	}
	ev := make([]float64, m)
	for i := range ev {
		ev[i] = a[i][i]
	}
	return ev
}

// mixEdge is one outgoing transition used by the mixing analysis.
type mixEdge struct {
	to   int
	rate float64
}

// conductance computes the exact chain conductance
// phi = min over cuts A (pi(A) <= 1/2) of Q(A, A^c) / pi(A),
// with Q(A, A^c) = sum_{i in A, j not in A} pi_i P(i, j).
func conductance(pi []float64, adj [][]mixEdge, q float64, m int) float64 {
	best := math.Inf(1)
	for mask := 1; mask < (1<<uint(m))-1; mask++ {
		piA := 0.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				piA += pi[i]
			}
		}
		if piA > 0.5 || piA == 0 { //lint:allow floateq zero-probability cut: only exactly-empty mass is skipped
			continue
		}
		flow := 0.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, e := range adj[i] {
				if mask&(1<<uint(e.to)) == 0 {
					flow += pi[i] * e.rate / q
				}
			}
		}
		if v := flow / piA; v < best {
			best = v
		}
	}
	return best
}
