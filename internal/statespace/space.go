// Package statespace provides the exact Markov-chain analysis of EconCast
// from Sections IV–VI of the paper: enumeration of the collision-free
// network state space W, the Gibbs stationary distribution of eq. (19), the
// transition-rate structure of eq. (31), the dual (Lagrangian) solver for
// the entropy-regularized problem (P4) following Algorithm 1, and the
// closed-form burstiness analysis of Appendix E (eqs. 34–35).
//
// For heterogeneous networks the space is enumerated exactly (practical up
// to ~16 nodes); for homogeneous networks the symmetry-reduced class
// representation (ReducedSpace) supports arbitrary N.
//
// Enumerate caches per-state derived quantities — listener popcounts,
// throughputs for both modes, and the listener occupancy masks — so the
// Gibbs hot loop is pure table arithmetic: the per-state energy cost is a
// single lookup into a per-listener-mask prefix table rebuilt once per
// eta, instead of an O(N) scan over node states. The dual descent calls
// Gibbs hundreds of times per solve, so Space also pools the Dist buffers
// (see Dist.Release); the steady-state loop allocates nothing.
package statespace

import (
	"fmt"
	"math"
	"math/bits"

	"econcast/internal/model"
)

// Space is the enumerated collision-free state space W of a network: all
// states with at most one transmitter (§III-C), of size (N+2)*2^(N-1).
type Space struct {
	nw     *model.Network
	states []model.NetState
	index  []int // key -> state index, or -1

	// Derived per-state caches, filled at Enumerate time.
	pops []uint8      // listener popcount c_w per state
	tws  [2][]float64 // per-state throughput T_w, indexed by model.Mode

	// Scratch reused across Gibbs/Fractions calls (cold-allocated here so
	// the hot loop allocates nothing). A Space is not safe for concurrent
	// use; parallel sweeps enumerate one Space per cell.
	maskCost []float64 // per listener-mask eta-weighted listen cost
	maskMass []float64 // per listener-mask probability mass (Fractions)
	etaL     []float64 // eta_j * L_j
	etaX     []float64 // eta_j * X_j, shifted by one so index 0 = no transmitter
	scratch  *Dist     // single-slot Dist pool (see Dist.Release)
}

// Enumerate builds the exact state space. It returns an error if the
// network is invalid or too large to enumerate.
func Enumerate(nw *model.Network) (*Space, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	n := nw.N()
	if n > model.MaxNodesExact {
		return nil, fmt.Errorf("statespace: N=%d exceeds exact-enumeration limit %d",
			n, model.MaxNodesExact)
	}
	numStates := model.NumStates(n)
	sp := &Space{
		nw:       nw,
		states:   make([]model.NetState, 0, numStates),
		index:    make([]int, (n+1)<<uint(n)),
		pops:     make([]uint8, 0, numStates),
		maskCost: make([]float64, 1<<uint(n)),
		maskMass: make([]float64, 1<<uint(n)),
		etaL:     make([]float64, n),
		etaX:     make([]float64, n+1),
	}
	for i := range sp.index {
		sp.index[i] = -1
	}
	add := func(s model.NetState) {
		sp.index[sp.key(s)] = len(sp.states)
		sp.states = append(sp.states, s)
		sp.pops = append(sp.pops, uint8(bits.OnesCount64(s.Listeners)))
	}
	full := uint64(1)<<uint(n) - 1
	// States without a transmitter: every listener subset.
	for mask := uint64(0); mask <= full; mask++ {
		add(model.NetState{Transmitter: model.NoTransmitter, Listeners: mask})
	}
	// States with one transmitter: every subset of the rest listening.
	for tx := 0; tx < n; tx++ {
		rest := full &^ (1 << uint(tx))
		// Iterate over all submasks of rest, including the empty one.
		for sub := rest; ; sub = (sub - 1) & rest {
			add(model.NetState{Transmitter: tx, Listeners: sub})
			if sub == 0 {
				break
			}
		}
	}
	// Cache T_w for both modes: groupput counts listeners, anyput counts
	// whether any listener hears the (unique) transmitter.
	sp.tws[model.Groupput] = make([]float64, len(sp.states))
	sp.tws[model.Anyput] = make([]float64, len(sp.states))
	for i, w := range sp.states {
		if !w.HasTransmitter() {
			continue
		}
		c := float64(sp.pops[i])
		sp.tws[model.Groupput][i] = c
		if c > 0 {
			sp.tws[model.Anyput][i] = 1
		}
	}
	return sp, nil
}

// key maps a valid state to a dense integer.
func (sp *Space) key(s model.NetState) int {
	n := sp.nw.N()
	return (s.Transmitter+1)<<uint(n) | int(s.Listeners)
}

// Len returns |W|.
func (sp *Space) Len() int { return len(sp.states) }

// Network returns the network the space was built over.
func (sp *Space) Network() *model.Network { return sp.nw }

// State returns the i-th state.
func (sp *Space) State(i int) model.NetState { return sp.states[i] }

// NumListeners returns the cached listener popcount of the i-th state.
func (sp *Space) NumListeners(i int) int { return int(sp.pops[i]) }

// Index returns the index of state s, or -1 if s is not in W.
func (sp *Space) Index(s model.NetState) int {
	if !s.Valid(sp.nw.N()) {
		return -1
	}
	return sp.index[sp.key(s)]
}

// logSumExp returns log(sum(exp(xs))) computed stably.
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Dist is the Gibbs stationary distribution pi^eta of eq. (19) over an
// enumerated space, for a fixed multiplier vector eta, temperature sigma,
// and throughput mode.
type Dist struct {
	space *Space
	mode  model.Mode
	sigma float64
	logPi []float64 // log pi_w (normalized)
	pi    []float64 // pi_w, materialized once (exp is the hot path)
	logZ  float64
}

// Gibbs computes the stationary distribution (19) for multipliers eta.
//
// The per-state energy cost sum_j eta_j P_j(w) is assembled from two
// caches: a per-listener-mask prefix table (rebuilt in one O(2^N) pass per
// call — cheap next to |W| = (N+2) 2^(N-1)) and the per-node transmit
// costs, so each of the |W| states costs O(1) instead of O(N). Buffers
// come from the Space's Dist pool; release them with Dist.Release when the
// distribution is no longer needed (the dual descent does) to keep the
// steady-state loop allocation-free.
func (sp *Space) Gibbs(eta []float64, sigma float64, mode model.Mode) *Dist {
	n := sp.nw.N()
	if len(eta) != n {
		panic("statespace: eta length mismatch")
	}
	if sigma <= 0 {
		panic("statespace: sigma must be positive")
	}
	d := sp.scratch
	if d != nil {
		sp.scratch = nil
	} else {
		d = &Dist{
			logPi: make([]float64, sp.Len()), //lint:allow hotalloc pool miss: one buffer per live Dist, reused via Release in steady state
			pi:    make([]float64, sp.Len()), //lint:allow hotalloc pool miss: one buffer per live Dist, reused via Release in steady state
		}
	}
	d.space = sp
	d.mode = mode
	d.sigma = sigma

	// Per-node eta-weighted powers; etaX is shifted so Transmitter+1
	// indexes it directly (0 = no transmitter, zero cost).
	sp.etaX[0] = 0
	for j := 0; j < n; j++ {
		sp.etaL[j] = eta[j] * sp.nw.Nodes[j].ListenPower
		sp.etaX[j+1] = eta[j] * sp.nw.Nodes[j].TransmitPower
	}
	// Listener-mask cost table: one add per mask via the lowest set bit.
	mc := sp.maskCost
	mc[0] = 0
	for mask := uint64(1); mask < uint64(len(mc)); mask++ {
		lsb := mask & -mask
		mc[mask] = mc[mask^lsb] + sp.etaL[bits.TrailingZeros64(lsb)]
	}
	tw := sp.tws[mode]
	inv := 1 / sigma
	for i, w := range sp.states {
		d.logPi[i] = (tw[i] - mc[w.Listeners] - sp.etaX[w.Transmitter+1]) * inv
	}
	d.logZ = logSumExp(d.logPi)
	for i := range d.logPi {
		d.logPi[i] -= d.logZ
		d.pi[i] = math.Exp(d.logPi[i])
	}
	return d
}

// Release returns the distribution's buffers to its Space for reuse by a
// later Gibbs call. The Dist must not be used after Release. Callers that
// keep the Dist (or hold several at once) simply never release; only the
// hot dual-descent loop needs the pooling.
func (d *Dist) Release() {
	d.space.scratch = d
}

// Pi returns pi_w for state index i.
func (d *Dist) Pi(i int) float64 { return d.pi[i] }

// LogZ returns log of the normalizing constant Z_eta (with the
// un-normalized weights of eq. 19).
func (d *Dist) LogZ() float64 { return d.logZ }

// Throughput returns the expected state throughput sum_w pi_w T_w under the
// distribution's own mode.
func (d *Dist) Throughput() float64 {
	tw := d.space.tws[d.mode]
	sum := 0.0
	for i, t := range tw {
		if t > 0 {
			sum += t * d.pi[i]
		}
	}
	return sum
}

// Fractions returns alpha (listen) and beta (transmit) time fractions per
// node, eq. (24). The listener side first collapses the |W| states onto
// their 2^N listener masks (states with different transmitters share a
// mask), then unpacks each mask's aggregated mass once — roughly (N+2)/2
// fewer bit scans than walking every state.
func (d *Dist) Fractions() (alpha, beta []float64) {
	n := d.space.nw.N()
	alpha = make([]float64, n)
	beta = make([]float64, n)
	mm := d.space.maskMass
	for i := range mm {
		mm[i] = 0
	}
	for i, w := range d.space.states {
		p := d.pi[i]
		if w.HasTransmitter() {
			beta[w.Transmitter] += p
		}
		mm[w.Listeners] += p
	}
	for mask, p := range mm {
		if p == 0 { //lint:allow floateq zero-mass skip is an optimization; tiny mass still accumulates
			continue
		}
		for b := uint64(mask); b != 0; b &= b - 1 {
			alpha[bits.TrailingZeros64(b)] += p
		}
	}
	return alpha, beta
}

// PowerConsumption returns each node's mean power draw alpha_i L_i +
// beta_i X_i under the distribution.
func (d *Dist) PowerConsumption() []float64 {
	alpha, beta := d.Fractions()
	out := make([]float64, len(alpha))
	for i := range out {
		node := d.space.nw.Nodes[i]
		out[i] = alpha[i]*node.ListenPower + beta[i]*node.TransmitPower
	}
	return out
}

// AvgBurstLength returns the analytical average burst length of EconCast-C
// under this distribution, eq. (34) for groupput mode and eq. (35)
// (= e^{1/sigma}) for anyput mode, where bursts are consecutive packets
// received before the transmitter releases the channel.
func (d *Dist) AvgBurstLength() float64 {
	if d.mode == model.Anyput {
		return AnyputBurstLength(d.sigma)
	}
	num := 0.0
	den := 0.0
	for i, w := range d.space.states {
		if !w.HasTransmitter() {
			continue
		}
		c := int(d.space.pops[i])
		if c < 1 {
			continue
		}
		p := d.pi[i]
		num += p
		den += p * math.Exp(-float64(c)/d.sigma)
	}
	if den == 0 { //lint:allow floateq exact-zero denominator guard before division
		return math.Inf(1)
	}
	return num / den
}

// AnyputBurstLength returns eq. (35): the anyput average burst length
// e^{1/sigma}, independent of N.
func AnyputBurstLength(sigma float64) float64 { return math.Exp(1 / sigma) }

// Entropy returns -sum_w pi_w log pi_w.
func (d *Dist) Entropy() float64 {
	h := 0.0
	for _, lp := range d.logPi {
		p := math.Exp(lp)
		if p > 0 {
			h -= p * lp
		}
	}
	return h
}

// P4Objective returns the (P4) objective sum pi T - sigma sum pi log pi at
// this distribution.
func (d *Dist) P4Objective() float64 {
	return d.Throughput() + d.sigma*d.Entropy()
}
