// Package statespace provides the exact Markov-chain analysis of EconCast
// from Sections IV–VI of the paper: enumeration of the collision-free
// network state space W, the Gibbs stationary distribution of eq. (19), the
// transition-rate structure of eq. (31), the dual (Lagrangian) solver for
// the entropy-regularized problem (P4) following Algorithm 1, and the
// closed-form burstiness analysis of Appendix E (eqs. 34–35).
//
// For heterogeneous networks the space is enumerated exactly (practical up
// to ~16 nodes); for homogeneous networks an aggregated representation over
// (transmitter-present, listener-count) classes supports arbitrary N.
package statespace

import (
	"fmt"
	"math"

	"econcast/internal/model"
)

// Space is the enumerated collision-free state space W of a network: all
// states with at most one transmitter (§III-C), of size (N+2)*2^(N-1).
type Space struct {
	nw     *model.Network
	states []model.NetState
	index  []int // key -> state index, or -1
}

// Enumerate builds the exact state space. It returns an error if the
// network is invalid or too large to enumerate.
func Enumerate(nw *model.Network) (*Space, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	n := nw.N()
	if n > model.MaxNodesExact {
		return nil, fmt.Errorf("statespace: N=%d exceeds exact-enumeration limit %d",
			n, model.MaxNodesExact)
	}
	sp := &Space{
		nw:     nw,
		states: make([]model.NetState, 0, model.NumStates(n)),
		index:  make([]int, (n+1)<<uint(n)),
	}
	for i := range sp.index {
		sp.index[i] = -1
	}
	add := func(s model.NetState) {
		sp.index[sp.key(s)] = len(sp.states)
		sp.states = append(sp.states, s)
	}
	full := uint64(1)<<uint(n) - 1
	// States without a transmitter: every listener subset.
	for mask := uint64(0); mask <= full; mask++ {
		add(model.NetState{Transmitter: model.NoTransmitter, Listeners: mask})
	}
	// States with one transmitter: every subset of the rest listening.
	for tx := 0; tx < n; tx++ {
		rest := full &^ (1 << uint(tx))
		// Iterate over all submasks of rest, including the empty one.
		for sub := rest; ; sub = (sub - 1) & rest {
			add(model.NetState{Transmitter: tx, Listeners: sub})
			if sub == 0 {
				break
			}
		}
	}
	return sp, nil
}

// key maps a valid state to a dense integer.
func (sp *Space) key(s model.NetState) int {
	n := sp.nw.N()
	return (s.Transmitter+1)<<uint(n) | int(s.Listeners)
}

// Len returns |W|.
func (sp *Space) Len() int { return len(sp.states) }

// Network returns the network the space was built over.
func (sp *Space) Network() *model.Network { return sp.nw }

// State returns the i-th state.
func (sp *Space) State(i int) model.NetState { return sp.states[i] }

// Index returns the index of state s, or -1 if s is not in W.
func (sp *Space) Index(s model.NetState) int {
	if !s.Valid(sp.nw.N()) {
		return -1
	}
	return sp.index[sp.key(s)]
}

// logSumExp returns log(sum(exp(xs))) computed stably.
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Dist is the Gibbs stationary distribution pi^eta of eq. (19) over an
// enumerated space, for a fixed multiplier vector eta, temperature sigma,
// and throughput mode.
type Dist struct {
	space *Space
	mode  model.Mode
	sigma float64
	logPi []float64 // log pi_w (normalized)
	pi    []float64 // pi_w, materialized once (exp is the hot path)
	logZ  float64
}

// Gibbs computes the stationary distribution (19) for multipliers eta.
func (sp *Space) Gibbs(eta []float64, sigma float64, mode model.Mode) *Dist {
	if len(eta) != sp.nw.N() {
		panic("statespace: eta length mismatch")
	}
	if sigma <= 0 {
		panic("statespace: sigma must be positive")
	}
	d := &Dist{
		space: sp,
		mode:  mode,
		sigma: sigma,
		logPi: make([]float64, sp.Len()),
	}
	for i, w := range sp.states {
		cost := 0.0
		for j := 0; j < sp.nw.N(); j++ {
			switch w.StateOf(j) {
			case model.Listen:
				cost += eta[j] * sp.nw.Nodes[j].ListenPower
			case model.Transmit:
				cost += eta[j] * sp.nw.Nodes[j].TransmitPower
			}
		}
		d.logPi[i] = (w.Throughput(mode) - cost) / sigma
	}
	d.logZ = logSumExp(d.logPi)
	d.pi = make([]float64, len(d.logPi))
	for i := range d.logPi {
		d.logPi[i] -= d.logZ
		d.pi[i] = math.Exp(d.logPi[i])
	}
	return d
}

// Pi returns pi_w for state index i.
func (d *Dist) Pi(i int) float64 { return d.pi[i] }

// LogZ returns log of the normalizing constant Z_eta (with the
// un-normalized weights of eq. 19).
func (d *Dist) LogZ() float64 { return d.logZ }

// Throughput returns the expected state throughput sum_w pi_w T_w under the
// distribution's own mode.
func (d *Dist) Throughput() float64 {
	sum := 0.0
	for i, w := range d.space.states {
		if t := w.Throughput(d.mode); t > 0 {
			sum += t * d.Pi(i)
		}
	}
	return sum
}

// Fractions returns alpha (listen) and beta (transmit) time fractions per
// node, eq. (24).
func (d *Dist) Fractions() (alpha, beta []float64) {
	n := d.space.nw.N()
	alpha = make([]float64, n)
	beta = make([]float64, n)
	for i, w := range d.space.states {
		p := d.Pi(i)
		if p == 0 { //lint:allow floateq zero-mass skip is an optimization; tiny mass still accumulates
			continue
		}
		if w.HasTransmitter() {
			beta[w.Transmitter] += p
		}
		mask := w.Listeners
		for mask != 0 {
			j := trailingZeros(mask)
			alpha[j] += p
			mask &= mask - 1
		}
	}
	return alpha, beta
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// PowerConsumption returns each node's mean power draw alpha_i L_i +
// beta_i X_i under the distribution.
func (d *Dist) PowerConsumption() []float64 {
	alpha, beta := d.Fractions()
	out := make([]float64, len(alpha))
	for i := range out {
		node := d.space.nw.Nodes[i]
		out[i] = alpha[i]*node.ListenPower + beta[i]*node.TransmitPower
	}
	return out
}

// AvgBurstLength returns the analytical average burst length of EconCast-C
// under this distribution, eq. (34) for groupput mode and eq. (35)
// (= e^{1/sigma}) for anyput mode, where bursts are consecutive packets
// received before the transmitter releases the channel.
func (d *Dist) AvgBurstLength() float64 {
	if d.mode == model.Anyput {
		return AnyputBurstLength(d.sigma)
	}
	num := 0.0
	den := 0.0
	for i, w := range d.space.states {
		if !w.HasTransmitter() {
			continue
		}
		c := w.NumListeners()
		if c < 1 {
			continue
		}
		p := d.Pi(i)
		num += p
		den += p * math.Exp(-float64(c)/d.sigma)
	}
	if den == 0 { //lint:allow floateq exact-zero denominator guard before division
		return math.Inf(1)
	}
	return num / den
}

// AnyputBurstLength returns eq. (35): the anyput average burst length
// e^{1/sigma}, independent of N.
func AnyputBurstLength(sigma float64) float64 { return math.Exp(1 / sigma) }

// Entropy returns -sum_w pi_w log pi_w.
func (d *Dist) Entropy() float64 {
	h := 0.0
	for _, lp := range d.logPi {
		p := math.Exp(lp)
		if p > 0 {
			h -= p * lp
		}
	}
	return h
}

// P4Objective returns the (P4) objective sum pi T - sigma sum pi log pi at
// this distribution.
func (d *Dist) P4Objective() float64 {
	return d.Throughput() + d.sigma*d.Entropy()
}
