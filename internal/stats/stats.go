// Package stats provides the small statistical toolkit used by the
// simulators and the experiment harness: online accumulators, quantiles,
// empirical CDFs, histograms, and normal-approximation confidence
// intervals. Everything is dependency-free and allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes mean and variance online using Welford's algorithm.
// The zero value is ready to use.
//
//lint:owner goroutine single-owner state; merge per-goroutine accumulators after the barrier
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Merge folds accumulator b into a using the parallel (Chan et al.)
// combination of Welford states. The result depends only on the two
// states, not on the interleaving of the original observations, so
// per-owner accumulators merged in a canonical order yield bit-identical
// moments regardless of how the observations were scheduled. Merging is
// associative in exact arithmetic; callers that need bit-identical
// floats must merge in a fixed order (the engines merge per-node
// accumulators in ascending node order).
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// Mean returns the sample mean, or 0 if no observations were recorded.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 if none were recorded.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if none were recorded.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Stddev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or a
// q outside [0, 1]. xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// CDF is an empirical cumulative distribution function over recorded
// samples. The zero value is ready to use.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add records one sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// NewCDF builds a sealed CDF over the given samples, taking ownership of
// the slice. The samples are sorted, so two CDFs built from the same
// multiset of values — collected in any order — compare deeply equal;
// the simulation engines rely on this to stay byte-identical across
// serial and parallel schedules. An empty input yields the zero CDF.
func NewCDF(xs []float64) CDF {
	if len(xs) == 0 {
		return CDF{}
	}
	sort.Float64s(xs)
	return CDF{xs: xs, sorted: true}
}

// Seal sorts the recorded samples in place, putting the CDF in its
// canonical order-independent representation.
func (c *CDF) Seal() { c.ensureSorted() }

// N returns the number of recorded samples.
func (c *CDF) N() int { return len(c.xs) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// At returns P(X <= x) under the empirical distribution. It returns 0 when
// no samples have been recorded.
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-th quantile of the recorded samples. It panics if
// no samples have been recorded.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	c.ensureSorted()
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	return quantileSorted(c.xs, q)
}

// Mean returns the mean of the recorded samples, or 0 when empty.
func (c *CDF) Mean() float64 { return Mean(c.xs) }

// Points returns (x, P(X<=x)) pairs suitable for plotting: one point per
// distinct sample value, in increasing order.
func (c *CDF) Points() (xs, ps []float64) {
	if len(c.xs) == 0 {
		return nil, nil
	}
	c.ensureSorted()
	n := float64(len(c.xs))
	for i := 0; i < len(c.xs); i++ {
		// Emit only the last occurrence of each distinct value.
		if i+1 < len(c.xs) && c.xs[i+1] == c.xs[i] { //lint:allow floateq CDF steps merge only bit-identical sample values
			continue
		}
		xs = append(xs, c.xs[i])
		ps = append(ps, float64(i+1)/n)
	}
	return xs, ps
}

// Histogram counts observations into equal-width bins over [lo, hi).
// Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Under  int
	Over   int
	total  int
}

// NewHistogram returns a histogram with n equal-width bins spanning
// [lo, hi). It panics if n <= 0 or lo >= hi.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with n <= 0")
	}
	if lo >= hi {
		panic("stats: NewHistogram with lo >= hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Bins) { // guard against floating-point edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// N returns the total number of observations, including out-of-range ones.
func (h *Histogram) N() int { return h.total }

// Fraction returns the fraction of observations that fell in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// Counter tallies non-negative integer outcomes (e.g. "number of pings
// received"), used for the paper's Table IV. The zero value is ready to use.
//
//lint:owner goroutine single-owner state; merge per-goroutine counters after the barrier
type Counter struct {
	counts []int
	total  int
}

// Add records one outcome v >= 0.
func (c *Counter) Add(v int) {
	if v < 0 {
		panic("stats: Counter.Add with negative value")
	}
	for len(c.counts) <= v {
		c.counts = append(c.counts, 0)
	}
	c.counts[v]++
	c.total++
}

// N returns the total number of outcomes recorded.
func (c *Counter) N() int { return c.total }

// Max returns the largest outcome recorded, or -1 when empty.
func (c *Counter) Max() int { return len(c.counts) - 1 }

// Count returns the number of times outcome v was recorded.
func (c *Counter) Count(v int) int {
	if v < 0 || v >= len(c.counts) {
		return 0
	}
	return c.counts[v]
}

// Fraction returns the fraction of outcomes equal to v.
func (c *Counter) Fraction(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.Count(v)) / float64(c.total)
}

// Mean returns the mean outcome.
func (c *Counter) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	sum := 0
	for v, n := range c.counts {
		sum += v * n
	}
	return float64(sum) / float64(c.total)
}
