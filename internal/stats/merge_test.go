package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestAccumulatorMerge checks the parallel Welford combination against a
// direct accumulation: counts, extrema, and moments must agree to
// floating-point tolerance, and the merge must be schedule-independent
// (the same split points merged in the same order give identical bits).
func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, -5.25, 3.5, 8, 9.75}
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 5, len(xs)} {
		var a, b Accumulator
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Fatalf("cut %d: n/min/max = %d/%v/%v, want %d/%v/%v",
				cut, a.N(), a.Min(), a.Max(), whole.N(), whole.Min(), whole.Max())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Fatalf("cut %d: mean %v, want %v", cut, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
			t.Fatalf("cut %d: variance %v, want %v", cut, a.Variance(), whole.Variance())
		}
	}
}

// TestAccumulatorMergeDeterministic: merging the same per-owner states in
// the same order is bit-identical regardless of which goroutine produced
// them — the property the sim engines' canonical metric merge relies on.
func TestAccumulatorMergeDeterministic(t *testing.T) {
	parts := [][]float64{{1, 2}, {}, {3.25}, {4, 5, 6.5}}
	run := func() Accumulator {
		accs := make([]Accumulator, len(parts))
		for i, p := range parts {
			for _, x := range p {
				accs[i].Add(x)
			}
		}
		var out Accumulator
		for i := range accs {
			out.Merge(accs[i])
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("merge not deterministic: %+v vs %+v", a, b)
	}
}

// TestNewCDFCanonical: CDFs built from permutations of the same samples
// are deeply equal, and the empty input yields the zero value.
func TestNewCDFCanonical(t *testing.T) {
	a := NewCDF([]float64{3, 1, 2})
	b := NewCDF([]float64{2, 3, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("permuted CDFs differ: %+v vs %+v", a, b)
	}
	if a.Quantile(0.5) != 2 {
		t.Fatalf("median %v, want 2", a.Quantile(0.5))
	}
	if z := NewCDF(nil); !reflect.DeepEqual(z, CDF{}) {
		t.Fatalf("empty NewCDF not zero: %+v", z)
	}
	var inc CDF
	for _, x := range []float64{3, 1, 2} {
		inc.Add(x)
	}
	inc.Seal()
	if !reflect.DeepEqual(inc, a) {
		t.Fatalf("sealed incremental CDF differs from NewCDF: %+v vs %+v", inc, a)
	}
}
