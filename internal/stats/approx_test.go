package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	// Force runtime float64 arithmetic: constant expressions like
	// 0.1+0.2 fold exactly at compile time and would test nothing.
	tenth, fifth := 0.1, 0.2
	sum := tenth + fifth // 0.30000000000000004
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},                         // exact fast path
		{sum, 0.3, 1e-12, true},                 // classic rounding gap
		{sum, 0.3, 1e-17, false},                // tolerance below the gap
		{1e12, 1e12 + 1, 1e-9, true},            // relative scaling kicks in
		{1e12, 1e12 * 1.01, 1e-9, false},        //
		{0, 1e-12, 1e-9, true},                  // absolute floor near zero
		{math.Inf(1), math.Inf(1), 1e-9, true},  // equal infinities
		{math.Inf(1), math.Inf(-1), 1e9, false}, //
		{math.NaN(), math.NaN(), 1e9, false},    // NaN never equals
		{1, math.NaN(), 1e9, false},             //
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxZero(t *testing.T) {
	if !ApproxZero(1e-12, 1e-9) || ApproxZero(1e-6, 1e-9) || !ApproxZero(0, 0) {
		t.Fatal("ApproxZero thresholds wrong")
	}
}
