package stats

import "math"

// ApproxEqual reports whether a and b agree within tol, using a hybrid
// absolute/relative criterion: |a-b| <= tol*max(1, |a|, |b|). This is
// the approved way to compare computed float64s in this repo; econlint's
// floateq analyzer flags raw == / != between floats (rounding makes
// "equal" values differ in the last ulp), and only epsilon helpers like
// this one may compare exactly.
func ApproxEqual(a, b, tol float64) bool {
	// Fast path; also handles equal infinities. Exact comparison is fine
	// here: floateq exempts epsilon helpers like this one by name.
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	// Unequal infinities (equal ones took the fast path): never close,
	// and Inf <= tol*Inf below would wrongly say yes.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// ApproxZero reports whether x is within tol of zero (absolute).
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
