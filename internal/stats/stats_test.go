package stats

import (
	"math"
	"testing"
	"testing/quick"

	"econcast/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance is 4*8/7.
	if !almost(a.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator not all-zero")
	}
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 {
		t.Fatalf("single-sample Mean/Variance = %v/%v", a.Mean(), a.Variance())
	}
}

// Property: accumulator mean matches batch mean, variance matches two-pass
// variance, for arbitrary finite inputs.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(mean))
		return almost(a.Mean(), mean, 1e-8*scale) &&
			almost(a.Variance(), v, 1e-6*math.Max(1, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := rng.New(1)
	var small, large Accumulator
	for i := 0; i < 100; i++ {
		small.Add(src.Normal())
	}
	for i := 0; i < 10000; i++ {
		large.Add(src.Normal())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 2, 3} {
		c.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); !almost(got, 2, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if !almost(c.Mean(), 2, 1e-12) {
		t.Errorf("mean = %v", c.Mean())
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for _, x := range []float64{3, 1, 1, 2} {
		c.Add(x)
	}
	xs, ps := c.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.5, 0.75, 1}
	if len(xs) != 3 {
		t.Fatalf("points: %v %v", xs, ps)
	}
	for i := range xs {
		if xs[i] != wantX[i] || !almost(ps[i], wantP[i], 1e-12) {
			t.Fatalf("points: %v %v", xs, ps)
		}
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	var c CDF
	c.Add(1)
	_ = c.At(1)
	c.Add(0) // must re-sort
	if got := c.At(0); !almost(got, 0.5, 1e-12) {
		t.Fatalf("At(0) after re-add = %v", got)
	}
}

// Property: CDF.At is monotonically non-decreasing.
func TestCDFMonotoneProperty(t *testing.T) {
	src := rng.New(2)
	var c CDF
	for i := 0; i < 500; i++ {
		c.Add(src.Normal())
	}
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		p := c.At(x)
		if p < prev {
			t.Fatalf("CDF decreased at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Bins[0] != 2 || h.Bins[1] != 1 || h.Bins[4] != 1 {
		t.Fatalf("bins = %v", h.Bins)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if !almost(h.Fraction(0), 2.0/7, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 5)
}

func TestCounter(t *testing.T) {
	var c Counter
	for _, v := range []int{0, 0, 1, 3} {
		c.Add(v)
	}
	if c.N() != 4 || c.Max() != 3 {
		t.Fatalf("N/Max = %d/%d", c.N(), c.Max())
	}
	if c.Count(0) != 2 || c.Count(2) != 0 || c.Count(3) != 1 || c.Count(9) != 0 {
		t.Fatal("counts wrong")
	}
	if !almost(c.Fraction(0), 0.5, 1e-12) {
		t.Fatalf("Fraction(0) = %v", c.Fraction(0))
	}
	if !almost(c.Mean(), 1, 1e-12) {
		t.Fatalf("Mean = %v", c.Mean())
	}
}

func TestCounterEmpty(t *testing.T) {
	var c Counter
	if c.Max() != -1 || c.Mean() != 0 || c.Fraction(0) != 0 {
		t.Fatal("empty counter defaults wrong")
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}
