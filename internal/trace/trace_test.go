package trace

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant{W: 1e-5}
	if c.Rate(0) != 1e-5 || c.Rate(1e6) != 1e-5 || c.Mean() != 1e-5 {
		t.Fatal("constant trace wrong")
	}
}

func TestIndoorLightShape(t *testing.T) {
	l := IndoorLight{Night: 1e-6, Day: 1e-4, OnHour: 8, OffHour: 20}
	// Midnight: night level.
	if l.Rate(0) != 1e-6 {
		t.Fatalf("midnight rate %v", l.Rate(0))
	}
	// 2 PM (middle of on-hours): near the day peak.
	noonish := l.Rate(14 * 3600)
	if noonish < 0.9e-4 {
		t.Fatalf("midday rate %v", noonish)
	}
	// Just before on-hour.
	if l.Rate(7.99*3600) != 1e-6 {
		t.Fatal("pre-on rate wrong")
	}
	// Continuity across days.
	if l.Rate(14*3600) != l.Rate(14*3600+daySeconds) {
		t.Fatal("not periodic")
	}
	// Monotone rise in the morning.
	if !(l.Rate(9*3600) < l.Rate(12*3600)) {
		t.Fatal("morning not rising")
	}
}

func TestIndoorLightMeanMatchesNumeric(t *testing.T) {
	l := IndoorLight{Night: 2e-6, Day: 5e-5, OnHour: 9, OffHour: 18}
	analytic := l.Mean()
	numeric := EmpiricalMean(l, daySeconds, 10)
	if math.Abs(analytic-numeric)/numeric > 0.01 {
		t.Fatalf("mean analytic %v vs numeric %v", analytic, numeric)
	}
}

func TestKinetic(t *testing.T) {
	k := NewKinetic(7, 3600, 1.0/120, 30, 1e-7, 2e-4)
	// Deterministic for the same seed.
	k2 := NewKinetic(7, 3600, 1.0/120, 30, 1e-7, 2e-4)
	for _, x := range []float64{0, 100, 500, 1799.5, 3599} {
		if k.Rate(x) != k2.Rate(x) {
			t.Fatal("kinetic trace not deterministic")
		}
		r := k.Rate(x)
		if r != 1e-7 && r != 2e-4 {
			t.Fatalf("rate %v neither baseline nor burst", r)
		}
	}
	// Mean matches numeric integration.
	analytic := k.Mean()
	numeric := EmpiricalMean(k, 3600, 0.25)
	if math.Abs(analytic-numeric)/analytic > 0.02 {
		t.Fatalf("kinetic mean %v vs numeric %v", analytic, numeric)
	}
	// Wraps beyond the horizon.
	if k.Rate(3600+5) != k.Rate(5) {
		t.Fatal("kinetic trace does not wrap")
	}
}

func TestNormalizeTo(t *testing.T) {
	l := IndoorLight{Night: 1e-6, Day: 1e-4, OnHour: 8, OffHour: 20}
	n := NormalizeTo(l, 1e-5)
	if math.Abs(n.Mean()-1e-5)/1e-5 > 1e-9 {
		t.Fatalf("normalized mean %v", n.Mean())
	}
	// Shape preserved: ratio between two times unchanged.
	r1 := l.Rate(14*3600) / l.Rate(0)
	r2 := n.Rate(14*3600) / n.Rate(0)
	if math.Abs(r1-r2) > 1e-9 {
		t.Fatal("normalization distorted the shape")
	}
}

func TestEmpiricalMeanEmpty(t *testing.T) {
	if EmpiricalMean(Constant{1}, 0, 1) != 0 {
		t.Fatal("empty integration should be 0")
	}
}
