// Package trace provides synthetic energy-harvesting profiles standing in
// for the measured indoor-light and kinetic (motion) traces the paper's
// power budgets are drawn from ([7], [8]): a constant source, a diurnal
// indoor-light profile with office hours, and a bursty kinetic profile.
// Profiles plug into the simulator as time-varying budgets, exercising the
// paper's remark (§III-A) that the analysis extends to time-varying power
// budgets with a constant mean.
package trace

import (
	"math"
	"sort"

	"econcast/internal/rng"
)

// Trace is a time-varying harvested-power profile in Watts.
type Trace interface {
	// Rate returns the harvesting rate at time t (seconds).
	Rate(t float64) float64
	// Mean returns the long-run average rate.
	Mean() float64
}

// Constant is a fixed-rate source.
type Constant struct{ W float64 }

// Rate implements Trace.
func (c Constant) Rate(float64) float64 { return c.W }

// Mean implements Trace.
func (c Constant) Mean() float64 { return c.W }

// IndoorLight models office lighting: a base trickle at night and a
// raised, gently varying level during on-hours each day.
type IndoorLight struct {
	Night   float64 // harvesting rate while lights are off (W)
	Day     float64 // mid-day harvesting rate (W)
	OnHour  float64 // hour lights turn on (0-24)
	OffHour float64 // hour lights turn off (0-24)
}

const daySeconds = 24 * 3600

// Rate implements Trace: night level outside office hours, and a smooth
// half-sine bump between OnHour and OffHour.
func (l IndoorLight) Rate(t float64) float64 {
	h := math.Mod(t, daySeconds) / 3600
	if h < l.OnHour || h >= l.OffHour {
		return l.Night
	}
	frac := (h - l.OnHour) / (l.OffHour - l.OnHour)
	return l.Night + (l.Day-l.Night)*math.Sin(math.Pi*frac)
}

// Mean implements Trace analytically: the half-sine bump integrates to
// 2/pi of its peak over the on-window.
func (l IndoorLight) Mean() float64 {
	onFrac := (l.OffHour - l.OnHour) / 24
	return l.Night + (l.Day-l.Night)*onFrac*2/math.Pi
}

// Kinetic models motion harvesting: near-zero baseline with bursts of
// power during movement episodes, generated once from a seed so the
// profile is deterministic.
type Kinetic struct {
	Baseline float64
	Burst    float64
	starts   []float64
	ends     []float64
	horizon  float64
}

// NewKinetic builds a kinetic profile over [0, horizon) seconds: movement
// episodes arrive as a Poisson process with the given rate (episodes per
// second) and exponentially distributed durations with the given mean.
func NewKinetic(seed uint64, horizon, episodeRate, meanEpisode, baseline, burst float64) *Kinetic {
	src := rng.New(seed)
	k := &Kinetic{Baseline: baseline, Burst: burst, horizon: horizon}
	t := 0.0
	for {
		t += src.Exp(episodeRate)
		if t >= horizon {
			break
		}
		d := src.Exp(1 / meanEpisode)
		k.starts = append(k.starts, t)
		end := t + d
		if end > horizon {
			end = horizon
		}
		k.ends = append(k.ends, end)
		t = end
	}
	return k
}

// Rate implements Trace. Outside [0, horizon) the profile wraps around.
func (k *Kinetic) Rate(t float64) float64 {
	if k.horizon > 0 {
		t = math.Mod(t, k.horizon)
	}
	i := sort.SearchFloat64s(k.starts, t)
	// starts[i-1] <= t < starts[i]; inside an episode if t < ends[i-1].
	if i > 0 && t < k.ends[i-1] {
		return k.Burst
	}
	return k.Baseline
}

// Mean implements Trace from the realized episode schedule.
func (k *Kinetic) Mean() float64 {
	if k.horizon == 0 { //lint:allow floateq zero means "no schedule realized", not a computed duration
		return k.Baseline
	}
	busy := 0.0
	for i := range k.starts {
		busy += k.ends[i] - k.starts[i]
	}
	frac := busy / k.horizon
	return k.Baseline*(1-frac) + k.Burst*frac
}

// Scaled wraps a trace with a multiplicative factor, e.g. to normalize a
// profile to a target mean budget.
type Scaled struct {
	T Trace
	K float64
}

// Rate implements Trace.
func (s Scaled) Rate(t float64) float64 { return s.K * s.T.Rate(t) }

// Mean implements Trace.
func (s Scaled) Mean() float64 { return s.K * s.T.Mean() }

// NormalizeTo returns the trace scaled so its mean equals target.
func NormalizeTo(t Trace, target float64) Scaled {
	return Scaled{T: t, K: target / t.Mean()}
}

// EmpiricalMean integrates a trace numerically over [0, horizon) with the
// given step, as a cross-check of analytic Mean implementations.
func EmpiricalMean(t Trace, horizon, step float64) float64 {
	sum := 0.0
	n := 0
	for x := step / 2; x < horizon; x += step {
		sum += t.Rate(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
