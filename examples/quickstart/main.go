// Quickstart: five energy-harvesting nodes in radio range of each other,
// each harvesting 10 uW against 500 uW listen/transmit radios — the
// paper's reference configuration. We compute what an omniscient scheduler
// could deliver (the oracle), what EconCast provably converges to at a
// given temperature sigma (the achievable throughput), and then actually
// run the distributed protocol and compare.
package main

import (
	"fmt"
	"log"

	"econcast"
)

func main() {
	nodes := econcast.Homogeneous(5,
		10*econcast.MicroWatt,  // harvested power budget
		500*econcast.MicroWatt, // listen power
		500*econcast.MicroWatt) // transmit power

	oracle, err := econcast.OracleGroupput(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle groupput (P2):      %.4f of a channel\n", oracle.Throughput)

	const sigma = 0.5
	ach, err := econcast.Achievable(nodes, sigma, econcast.Groupput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achievable T^%.1f (P4):     %.4f (%.0f%% of oracle)\n",
		sigma, ach.Throughput, 100*ach.Throughput/oracle.Throughput)

	res, err := econcast.Simulate(econcast.SimConfig{
		Network:  nodes,
		Mode:     econcast.Groupput,
		Sigma:    sigma,
		Duration: 4000, // simulated seconds
		Warmup:   1000,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated EconCast:        %.4f (%.0f%% of achievable)\n",
		res.Groupput, 100*res.Groupput/ach.Throughput)
	fmt.Printf("packets delivered:         %d (bursts avg %.1f packets)\n",
		res.PacketsDelivered, res.MeanBurstLength)
	for i, p := range res.Power {
		fmt.Printf("node %d consumed %.2f uW of its %.2f uW budget\n",
			i, p/econcast.MicroWatt, nodes[i].Budget/econcast.MicroWatt)
	}
}
