// Harvesting: EconCast under realistic time-varying energy sources. The
// paper's analysis assumes a constant power budget equal to the mean
// harvesting rate (§III-A) and notes the protocol adapts to variation
// through its battery-driven multiplier. Here half the nodes harvest
// indoor light (office hours), half harvest kinetic energy (motion
// bursts); all profiles are normalized to the same 10 uW mean, and the
// protocol is compared against the constant-budget prediction.
package main

import (
	"fmt"
	"log"

	"econcast"
	"econcast/internal/trace"
)

func main() {
	const mean = 10 * econcast.MicroWatt
	nodes := econcast.Homogeneous(6, mean, 500*econcast.MicroWatt, 500*econcast.MicroWatt)

	light := trace.NormalizeTo(trace.IndoorLight{
		Night: 0.5 * econcast.MicroWatt, Day: 40 * econcast.MicroWatt,
		OnHour: 8, OffHour: 20,
	}, mean)
	kinetic := trace.NormalizeTo(
		trace.NewKinetic(3, 24*3600, 1.0/600, 120, 0.2*econcast.MicroWatt, 80*econcast.MicroWatt),
		mean)
	fmt.Printf("profiles normalized to %.0f uW mean: light %.2f uW, kinetic %.2f uW\n",
		mean/econcast.MicroWatt, light.Mean()/econcast.MicroWatt, kinetic.Mean()/econcast.MicroWatt)

	profiles := []trace.Trace{light, kinetic, light, kinetic, light, kinetic}

	const sigma = 0.5
	ach, err := econcast.Achievable(nodes, sigma, econcast.Groupput)
	if err != nil {
		log.Fatal(err)
	}

	res, err := econcast.Simulate(econcast.SimConfig{
		Network:  nodes,
		Mode:     econcast.Groupput,
		Sigma:    sigma,
		Duration: 28 * 3600, // a full day cycle after warmup
		Warmup:   4 * 3600,
		Seed:     5,
		Harvest: func(node int, t float64) float64 {
			// Start mid-morning so light harvesters are productive early.
			return profiles[node].Rate(t + 9*3600)
		},
		// Real storage: 50 mJ capacitor-class buffer with a hard floor.
		BatteryFloor: 50e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("constant-budget prediction T^%.1f = %.4f\n", sigma, ach.Throughput)
	fmt.Printf("time-varying harvest result     = %.4f (%.0f%%)\n",
		res.Groupput, 100*res.Groupput/ach.Throughput)
	fmt.Println("(correlated rich periods can push groupput above the")
	fmt.Println(" constant-budget prediction: nodes are awake together)")
	fmt.Println("per-node consumption vs the 10 uW mean harvest:")
	for i, p := range res.Power {
		kind := "light  "
		if i%2 == 1 {
			kind = "kinetic"
		}
		fmt.Printf("  node %d (%s): %5.2f uW\n", i, kind, p/econcast.MicroWatt)
	}
}
