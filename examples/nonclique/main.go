// Non-clique deployment: a 4x4 grid of tags where only physical neighbors
// hear each other — a warehouse shelf layout. The paper's §IV-C gives
// bounds on the optimal groupput; this repository's exact configuration-LP
// oracle pins it down, and the simulated protocol runs with hidden
// terminals and collisions handled by the engine.
package main

import (
	"fmt"
	"log"

	"econcast"
)

func main() {
	const side = 4
	n := side * side
	nodes := econcast.Homogeneous(n,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	grid := econcast.GridNeighbors(side, side)

	lower, upper, err := econcast.OracleGroupputBounds(nodes, grid)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := econcast.OracleGroupputExact(nodes, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d grid oracle groupput: bounds [%.4f, %.4f], exact %.4f\n",
		side, side, lower.Throughput, upper.Throughput, exact.Throughput)

	// For contrast: the same 16 nodes in a single room (clique).
	clique, err := econcast.OracleGroupput(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same nodes as a clique:   %.4f (grid trades reach for reuse)\n\n",
		clique.Throughput)

	res, err := econcast.Simulate(econcast.SimConfig{
		Network:      nodes,
		Mode:         econcast.Groupput,
		Sigma:        0.25,
		Neighbors:    grid,
		Duration:     10000,
		Warmup:       2500,
		Seed:         13,
		BatteryFloor: 2e-3, // 2 mJ stores with a hard floor
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated EconCast on the grid: %.4f (%.0f%% of the exact oracle)\n",
		res.Groupput, 100*res.Groupput/exact.Throughput)
	fmt.Printf("packets delivered: %d\n", res.PacketsDelivered)
}
