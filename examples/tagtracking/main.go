// Tag tracking: the paper's motivating application. A room full of
// battery-free tags attached to objects — each harvesting a different
// amount of power (a tag near the window does far better than one in a
// drawer) with slightly different radio hardware — runs EconCast in
// groupput mode so every tag discovers and keeps hearing from every other
// tag as fast as the energy allows.
//
// The point demonstrated here is the paper's Table II insight: the right
// listen/transmit split for a tag depends on everyone else's budgets, yet
// EconCast finds it with no coordination — each tag watches only its own
// battery and the pings it hears.
package main

import (
	"fmt"
	"log"

	"econcast"
)

func main() {
	// Six heterogeneous tags: budgets spanning 50x (2 uW to 100 uW),
	// radios around 0.5 mW.
	tags := econcast.Network{
		{Budget: 2 * econcast.MicroWatt, ListenPower: 520 * econcast.MicroWatt, TransmitPower: 480 * econcast.MicroWatt},
		{Budget: 5 * econcast.MicroWatt, ListenPower: 490 * econcast.MicroWatt, TransmitPower: 510 * econcast.MicroWatt},
		{Budget: 10 * econcast.MicroWatt, ListenPower: 500 * econcast.MicroWatt, TransmitPower: 500 * econcast.MicroWatt},
		{Budget: 20 * econcast.MicroWatt, ListenPower: 530 * econcast.MicroWatt, TransmitPower: 470 * econcast.MicroWatt},
		{Budget: 50 * econcast.MicroWatt, ListenPower: 480 * econcast.MicroWatt, TransmitPower: 505 * econcast.MicroWatt},
		{Budget: 100 * econcast.MicroWatt, ListenPower: 510 * econcast.MicroWatt, TransmitPower: 495 * econcast.MicroWatt},
	}

	oracle, err := econcast.OracleGroupput(tags)
	if err != nil {
		log.Fatal(err)
	}
	const sigma = 0.4
	ach, err := econcast.Achievable(tags, sigma, econcast.Groupput)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("heterogeneous tag network: oracle %.4f, achievable %.4f (sigma=%.1f)\n\n",
		oracle.Throughput, ach.Throughput, sigma)
	fmt.Println("optimal behavior per tag (computed, but EconCast learns it online):")
	for i, tag := range tags {
		awake := ach.Alpha[i] + ach.Beta[i]
		fmt.Printf("  tag %d: %5.1f uW budget -> awake %5.2f%% of the time, transmitting %4.1f%% of that\n",
			i, tag.Budget/econcast.MicroWatt, 100*awake, 100*ach.Beta[i]/awake)
	}

	res, err := econcast.Simulate(econcast.SimConfig{
		Network:  tags,
		Mode:     econcast.Groupput,
		Sigma:    sigma,
		Duration: 6000,
		Warmup:   2000,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %.0f simulated seconds of fully distributed operation:\n", 6000.0)
	fmt.Printf("  groupput %.4f (%.0f%% of achievable), %d packet receptions\n",
		res.Groupput, 100*res.Groupput/ach.Throughput, res.PacketsDelivered)
	fmt.Println("  each tag stayed inside its own harvesting budget:")
	for i, p := range res.Power {
		fmt.Printf("  tag %d: consumed %6.2f uW of %6.2f uW\n",
			i, p/econcast.MicroWatt, tags[i].Budget/econcast.MicroWatt)
	}
}
