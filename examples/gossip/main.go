// Gossip dissemination: the paper's anyput use case. In a delay-tolerant
// sensor deployment it is enough for each transmission to reach *some*
// neighbor, which will itself forward the rumor later — so the network
// should maximize anyput, not groupput. Anyput mode only needs a 1-bit
// "is anyone listening?" estimate (gamma-hat) instead of a listener count,
// and its burstiness is e^{1/sigma} regardless of network size (eq. 35),
// giving noticeably smoother delivery than groupput mode at the same
// sigma.
//
// This example contrasts the two modes on the same 10-node network.
package main

import (
	"fmt"
	"log"

	"econcast"
)

func main() {
	nodes := econcast.Homogeneous(10,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	const sigma = 0.3

	oracleAny, err := econcast.OracleAnyput(nodes)
	if err != nil {
		log.Fatal(err)
	}
	oracleGrp, err := econcast.OracleGroupput(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracles: anyput %.4f (max 1), groupput %.4f (max %d)\n\n",
		oracleAny.Throughput, oracleGrp.Throughput, len(nodes)-1)

	for _, mode := range []econcast.Mode{econcast.Anyput, econcast.Groupput} {
		ach, err := econcast.Achievable(nodes, sigma, mode)
		if err != nil {
			log.Fatal(err)
		}
		res, err := econcast.Simulate(econcast.SimConfig{
			Network:  nodes,
			Mode:     mode,
			Sigma:    sigma,
			Duration: 8000,
			Warmup:   2500,
			Seed:     11,
			WarmEta:  ach.Eta,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s mode:\n", mode)
		fmt.Printf("  anyput %.4f, groupput %.4f\n", res.Anyput, res.Groupput)
		fmt.Printf("  analytic burst length %.1f packets; simulated %.1f\n",
			ach.BurstLength, res.MeanBurstLength)
		if res.LatencyN > 0 {
			fmt.Printf("  inter-burst latency: mean %.1f s, p99 %.1f s\n",
				res.MeanLatency, res.P99Latency)
		}
		fmt.Println()
	}
	fmt.Println("anyput mode trades per-receiver volume for shorter, steadier bursts —")
	fmt.Println("exactly the §VII-D design tradeoff for gossip workloads.")
}
