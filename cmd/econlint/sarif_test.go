package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"econcast/internal/lint"
)

const floateqFixture = "../../internal/lint/testdata/src/floateq"

// TestSarifReport pins the -sarif wire format: a valid SARIF 2.1.0 log
// whose rule table lists the full analyzer suite and whose results carry
// repo-relative locations under %SRCROOT%.
func TestSarifReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-sarif", "-as", experimentsPath, seedflowFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("log version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "econlint" {
		t.Errorf("driver name = %q", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("rule table has %d entries, want %d (the full suite)", len(r.Tool.Driver.Rules), len(lint.All()))
	}
	if len(r.Results) == 0 {
		t.Fatal("expected seedflow results")
	}
	for _, res := range r.Results {
		if res.RuleID != "seedflow" || res.Level != "warning" || res.Message.Text == "" {
			t.Errorf("malformed result: %+v", res)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("malformed artifact location: %+v", loc.ArtifactLocation)
		}
		if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("malformed region: %+v", loc.Region)
		}
	}
}

// TestSarifCleanKeepsRules pins that a clean run still emits the rule
// table and an empty (non-null) results array.
func TestSarifCleanKeepsRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", "../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"rules"`) || !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("clean SARIF log malformed:\n%s", out.String())
	}
}

// TestSarifParallelByteIdentical extends the determinism contract to the
// SARIF form: byte-identical at -parallel 1, 4, and 16.
func TestSarifParallelByteIdentical(t *testing.T) {
	render := func(workers string) (string, int) {
		var out, errb bytes.Buffer
		code := run([]string{"-sarif", "-parallel", workers, "-as", experimentsPath, seedflowFixture}, &out, &errb)
		return out.String(), code
	}
	seq, code := render("1")
	if code != 1 {
		t.Fatalf("sequential exit = %d, want 1", code)
	}
	for _, workers := range []string{"4", "16"} {
		if got, code := render(workers); code != 1 || got != seq {
			t.Errorf("-parallel %s SARIF differs from sequential (exit %d)", workers, code)
		}
	}
}

func TestSarifJSONMutuallyExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr missing conflict message:\n%s", errb.String())
	}
}

// TestBaselineFriendlyErrors pins that a missing or corrupt baseline
// produces an actionable message pointing at -write-baseline, not a raw
// os or JSON error.
func TestBaselineFriendlyErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", missing, "../../internal/rng"}, &out, &errb); code != 2 {
		t.Fatalf("missing-baseline exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "not found") || !strings.Contains(errb.String(), "-write-baseline") {
		t.Errorf("missing-baseline message not actionable:\n%s", errb.String())
	}

	corrupt := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", corrupt, "../../internal/rng"}, &out, &errb); code != 2 {
		t.Fatalf("corrupt-baseline exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "corrupt") || !strings.Contains(errb.String(), "-write-baseline") {
		t.Errorf("corrupt-baseline message not actionable:\n%s", errb.String())
	}
}

func TestFixFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-fix", "-baseline", "x.json"},
		{"-diff", "-baseline", "x.json"},
		{"-fix", "-audit-suppressions"},
		{"-diff", "-audit-suppressions"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// copyFixtureDir copies the top-level .go files of src into a temp dir.
func copyFixtureDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestFixAndDiffEndToEnd drives the full CLI autofix loop on a fixture
// copy: -diff previews without touching the tree, -fix rewrites it, and
// a final plain run exits clean.
func TestFixAndDiffEndToEnd(t *testing.T) {
	dir := copyFixtureDir(t, floateqFixture)
	before := snapshotDir(t, dir)

	var out, errb bytes.Buffer
	code := run([]string{"-diff", "-only", "floateq", "-as", "econcast/internal/lp", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("-diff exit = %d; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "+++ ") || !strings.Contains(out.String(), "stats.ApproxEqual(") {
		t.Errorf("-diff preview missing rewrite:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "dry run") {
		t.Errorf("-diff summary missing:\n%s", errb.String())
	}
	if got := snapshotDir(t, dir); got != before {
		t.Error("-diff modified the tree")
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-fix", "-only", "floateq", "-as", "econcast/internal/lp", dir}, &out, &errb); code != 0 {
		t.Fatalf("-fix exit = %d; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "applied") {
		t.Errorf("-fix summary missing:\n%s", errb.String())
	}
	if got := snapshotDir(t, dir); got == before {
		t.Error("-fix left the tree unchanged")
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "floateq", "-as", "econcast/internal/lp", dir}, &out, &errb); code != 0 {
		t.Errorf("post-fix lint exit = %d, want clean; stdout:\n%s", code, out.String())
	}
}

// snapshotDir concatenates the contents of every file in dir, for
// before/after comparisons.
func snapshotDir(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(e.Name() + "\x00")
		if _, err := io.Copy(&sb, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return sb.String()
}
