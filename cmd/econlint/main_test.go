package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	wallclockFixture = "../../internal/lint/testdata/src/wallclock"
	seedflowFixture  = "../../internal/lint/testdata/src/seedflow"
	auditFixture     = "../../internal/lint/testdata/src/auditstale"
	simPath          = "econcast/internal/sim"
	experimentsPath  = "econcast/internal/experiments"
)

func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maprange", "wallclock", "floateq", "rawgoroutine", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestSeededViolationExitsNonzero runs the CLI over a fixture package
// known to contain violations: the gate must fail loudly.
func TestSeededViolationExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-as", simPath, wallclockFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[wallclock]") {
		t.Errorf("output missing [wallclock] finding:\n%s", out.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestJSONRoundTrip pins the -json wire format: the report is a valid
// JSON array that round-trips through encoding/json with every field
// populated and slash-separated paths.
func TestJSONRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-as", experimentsPath, seedflowFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected seedflow findings in JSON report")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer != "seedflow" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if strings.Contains(f.File, "\\") {
			t.Errorf("File %q must be slash-separated", f.File)
		}
	}
	// Round-trip: re-marshaling what we decoded reproduces the report.
	again, err := marshalFindings(findings)
	if err != nil {
		t.Fatal(err)
	}
	if string(again)+"\n" != out.String() {
		t.Errorf("report does not round-trip through encoding/json:\n got: %s\nwant: %s", again, out.String())
	}
}

// TestJSONCleanIsEmptyArray pins that a clean run emits "[]", never
// "null", so downstream JSON consumers need no special case.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json report = %q, want []", out.String())
	}
}

// TestBaselineGate pins the CI contract: identical findings exit 0, any
// finding missing from the baseline exits 1 and is the only one printed.
func TestBaselineGate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-write-baseline", "-as", experimentsPath, seedflowFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var snap []jsonFinding
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("baseline file is not valid JSON: %v", err)
	}
	if len(snap) == 0 {
		t.Fatal("baseline snapshot is empty; expected seedflow findings")
	}

	// Same findings, same baseline: the gate passes and stays silent.
	out.Reset()
	errb.Reset()
	code = run([]string{"-baseline", base, "-as", experimentsPath, seedflowFixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("identical-baseline exit = %d; stdout:\n%s stderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("identical-baseline run printed findings:\n%s", out.String())
	}

	// Empty baseline: every finding is new and the gate fails.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-baseline", empty, "-as", experimentsPath, seedflowFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("empty-baseline exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[seedflow]") {
		t.Errorf("new findings missing from output:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "new finding(s)") {
		t.Errorf("stderr summary missing:\n%s", errb.String())
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestAuditSuppressions pins -audit-suppressions: the fixture carries
// live wallclock directives, one stale floateq directive, and one live
// directive still wearing the generated "TODO: justify" stub; exactly
// the stale one and the unjustified one are reported. A package whose
// directives all hold back real findings with written reasons audits
// clean.
func TestAuditSuppressions(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-audit-suppressions", "-as", simPath, auditFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s stderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[stale-suppression]") || !strings.Contains(out.String(), "floateq") {
		t.Errorf("stale floateq directive not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[unjustified-suppression]") || !strings.Contains(out.String(), "TODO: justify") {
		t.Errorf("unjustified stub directive not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "wallclock fixture") {
		t.Errorf("live wallclock directives must not be reported:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-audit-suppressions", "../../internal/..."}, &out, &errb); code != 0 {
		t.Fatalf("repo audit exit = %d; stdout:\n%s stderr:\n%s", code, out.String(), errb.String())
	}
}

// TestCheckMode pins -diff -check as a CI gate: a fixture with
// machine-applicable fixes exits 1 and still prints the diff, a clean
// package exits 0, and -check without -diff is a usage error.
func TestCheckMode(t *testing.T) {
	chandirFixture := "../../internal/lint/testdata/src/chandir"
	var out, errb bytes.Buffer
	code := run([]string{"-diff", "-check", "-as", "econcast/internal/asim", chandirFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s stderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "+++ ") {
		t.Errorf("-diff -check must still print the diff:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "outstanding suggested fixes") {
		t.Errorf("stderr missing the check-mode verdict:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-diff", "-check", "../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("clean -diff -check exit = %d; stderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-check", "../../internal/rng"}, &out, &errb); code != 2 {
		t.Fatalf("-check without -diff exit = %d, want 2", code)
	}
}

// TestParallelByteIdentical pins the headline determinism contract: the
// full report over packages with findings is byte-for-byte identical at
// -parallel 1, 4, and 16, in both text and JSON form.
func TestParallelByteIdentical(t *testing.T) {
	render := func(workers string, asJSON bool) (string, int) {
		args := []string{"-parallel", workers}
		if asJSON {
			args = append(args, "-json")
		}
		args = append(args, "-as", experimentsPath, seedflowFixture)
		var out, errb bytes.Buffer
		code := run(args, &out, &errb)
		return out.String(), code
	}
	for _, asJSON := range []bool{false, true} {
		seq, code := render("1", asJSON)
		if code != 1 {
			t.Fatalf("json=%v sequential exit = %d, want 1", asJSON, code)
		}
		for _, workers := range []string{"4", "16"} {
			got, code := render(workers, asJSON)
			if code != 1 {
				t.Fatalf("json=%v -parallel %s exit = %d, want 1", asJSON, workers, code)
			}
			if got != seq {
				t.Errorf("json=%v -parallel %s output differs from sequential:\n got:\n%s\nwant:\n%s", asJSON, workers, got, seq)
			}
		}
	}
	// Multi-package load path: the clean internal tree must agree too.
	seq, code := func() (string, int) {
		var out, errb bytes.Buffer
		c := run([]string{"-parallel", "1", "../../internal/..."}, &out, &errb)
		return out.String(), c
	}()
	if code != 0 {
		t.Fatalf("internal/... exit = %d, want 0", code)
	}
	for _, workers := range []string{"4", "16"} {
		var out, errb bytes.Buffer
		if c := run([]string{"-parallel", workers, "../../internal/..."}, &out, &errb); c != 0 || out.String() != seq {
			t.Errorf("-parallel %s over internal/...: exit %d, output %q, want exit 0 output %q", workers, c, out.String(), seq)
		}
	}
}
