package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maprange", "wallclock", "floateq", "rawgoroutine", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestSeededViolationExitsNonzero runs the CLI over a fixture package
// known to contain violations: the gate must fail loudly.
func TestSeededViolationExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(
		[]string{"-as", "econcast/internal/sim", "../../internal/lint/testdata/src/wallclock"},
		&out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[wallclock]") {
		t.Errorf("output missing [wallclock] finding:\n%s", out.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
