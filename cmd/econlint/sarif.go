package main

import (
	"encoding/json"

	"econcast/internal/lint"
)

// SARIF 2.1.0 wire structs — just the subset GitHub code scanning
// consumes. Field order is fixed by the struct definitions and findings
// arrive sorted, so the document is byte-identical at every -parallel.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// marshalSarif renders findings as a SARIF 2.1.0 log. The rule table
// always lists the full analyzer suite (not just -only), so rule
// metadata is stable across invocations.
func marshalSarif(findings []jsonFinding) ([]byte, error) {
	rules := make([]sarifRule, 0)
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "econlint", Rules: rules}}, Results: results}},
	}
	return json.MarshalIndent(log, "", "  ")
}
