// Econlint runs the project's determinism & correctness analyzers
// (internal/lint) over package patterns and reports findings as
// "file:line: [analyzer] message". It exits 1 when any finding survives
// suppression, 2 on usage or load errors.
//
// Usage:
//
//	econlint [-list] [-only name,name] [-as importpath] [-parallel n]
//	         [-json] [-sarif] [-baseline file [-write-baseline]]
//	         [-fix] [-diff [-check]] [-audit-suppressions] [packages]
//
// Patterns default to ./... and support the usual dir and dir/... forms.
// The -as flag checks a single directory under an assumed import path,
// which is how the fixture packages under internal/lint/testdata are
// placed into deterministic packages without living there.
//
// -parallel n type-checks and analyzes packages on n workers (0 means
// GOMAXPROCS); output is byte-identical for every worker count. -json
// replaces the text report with a JSON array of findings whose paths are
// slash-separated and repo-relative, suitable for artifacts and diffing.
// -sarif replaces it with a SARIF 2.1.0 log instead, which is what CI
// uploads so findings annotate pull-request diffs.
//
// -baseline file compares findings against a committed snapshot and
// fails only on NEW ones (matched line-insensitively on file, analyzer,
// and message, so unrelated edits don't churn the gate); with
// -write-baseline the current findings are written to the file instead.
// -audit-suppressions inverts the gate: it runs the full analyzer suite
// with suppressions disabled and reports every //lint:allow or
// //lint:ordered directive that no longer matches a finding, so stale
// exemptions cannot accumulate — and every directive still carrying the
// generated "TODO: justify" stub, so the suppression autofix cannot
// become a permanent exemption without a human writing the reason.
//
// -fix applies the machine-applicable suggested edits attached to
// findings (non-overlapping, first finding wins) and rewrites the
// affected files in place; -diff prints the same edits as a unified
// diff without touching anything. Both exit 0 by default: the edits,
// applied or previewed, are the deliverable. -check turns -diff into a
// gate that exits 1 while any suggested fix is outstanding, which is
// how CI refuses mechanical debt that `econlint -fix` would clear.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"econcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the stable wire form of one finding. File is
// slash-separated and relative to the working directory when the finding
// lies under it, so baselines and artifacts are machine-independent.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// key is the baseline identity of a finding: file, analyzer, and message
// but not line/column, so findings don't churn when unrelated edits move
// code around.
func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("econlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asPath := fs.String("as", "", "check a single directory under this assumed import path")
	parallel := fs.Int("parallel", 0, "worker count for loading and checking (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "report findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "report findings as a SARIF 2.1.0 log instead of text")
	baseline := fs.String("baseline", "", "compare findings against this JSON baseline; fail only on new ones")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit")
	audit := fs.Bool("audit-suppressions", false, "report suppression directives that no longer match any finding")
	applyFix := fs.Bool("fix", false, "apply suggested fixes to the source files in place")
	diffFix := fs.Bool("diff", false, "print suggested fixes as a unified diff without applying them")
	check := fs.Bool("check", false, "with -diff: exit 1 while any suggested fix is outstanding")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "econlint: -write-baseline requires -baseline <file>")
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "econlint: -json and -sarif are mutually exclusive")
		return 2
	}
	if (*applyFix || *diffFix) && (*baseline != "" || *audit) {
		fmt.Fprintln(stderr, "econlint: -fix/-diff cannot be combined with -baseline or -audit-suppressions")
		return 2
	}
	if *check && !*diffFix {
		fmt.Fprintln(stderr, "econlint: -check requires -diff")
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "econlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "econlint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	if *asPath != "" {
		if len(patterns) != 1 {
			fmt.Fprintln(stderr, "econlint: -as takes exactly one directory")
			return 2
		}
		pkg, err := loader.LoadDirAs(patterns[0], *asPath)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		pkgs = []*lint.Package{pkg}
	} else {
		pkgs, err = loader.LoadParallel(workers, patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
	}

	var findings []lint.Finding
	if *audit {
		// Auditing always runs the full suite: a directive naming an
		// analyzer excluded by -only would be reported stale spuriously.
		findings, err = lint.AuditSuppressions(workers, pkgs, lint.All())
	} else {
		findings, err = lint.CheckParallel(workers, pkgs, analyzers)
	}
	if err != nil {
		fmt.Fprintf(stderr, "econlint: %v\n", err)
		return 2
	}

	if *applyFix || *diffFix {
		return runFixes(findings, *applyFix, *check, stdout, stderr)
	}

	report := relativize(findings)

	if *writeBaseline {
		data, err := marshalFindings(report)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "econlint: wrote %d finding(s) to %s\n", len(report), *baseline)
		return 0
	}

	if *baseline != "" {
		known, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		fresh := subtractBaseline(report, known)
		if err := emit(stdout, fresh, outputFormat(*jsonOut, *sarifOut)); err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		if len(fresh) > 0 {
			fmt.Fprintf(stderr, "econlint: %d new finding(s) not in baseline %s (%d total, %d baselined)\n",
				len(fresh), *baseline, len(report), len(report)-len(fresh))
			return 1
		}
		return 0
	}

	if err := emit(stdout, report, outputFormat(*jsonOut, *sarifOut)); err != nil {
		fmt.Fprintf(stderr, "econlint: %v\n", err)
		return 2
	}
	if len(report) > 0 {
		fmt.Fprintf(stderr, "econlint: %d finding(s) in %d package(s)\n", len(report), len(pkgs))
		return 1
	}
	return 0
}

// relativize converts findings to the wire form, rewriting absolute
// positions under the working directory to slash-separated relative
// paths. Findings arrive sorted from internal/lint and the rewrite is
// order-preserving, so the report is byte-identical at every -parallel.
func relativize(findings []lint.Finding) []jsonFinding {
	cwd, _ := os.Getwd()
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonFinding{
			File:     filepath.ToSlash(file),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return out
}

type format int

const (
	formatText format = iota
	formatJSON
	formatSARIF
)

func outputFormat(jsonOut, sarifOut bool) format {
	switch {
	case jsonOut:
		return formatJSON
	case sarifOut:
		return formatSARIF
	}
	return formatText
}

// emit writes findings as text lines, a JSON array, or a SARIF log. The
// JSON form is always a valid array ("[]" when clean) and the SARIF form
// always carries the full rule table, so consumers never special-case
// the empty report.
func emit(w io.Writer, findings []jsonFinding, f format) error {
	switch f {
	case formatJSON:
		data, err := marshalFindings(findings)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	case formatSARIF:
		data, err := marshalSarif(findings)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	}
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// runFixes plans the suggested edits attached to findings and either
// applies them in place (-fix) or prints them as a unified diff (-diff).
// Paths in the diff header are relativized like report paths; the writes
// use the absolute paths the loader recorded. In check mode the dry run
// becomes a gate: outstanding fixes exit 1.
func runFixes(findings []lint.Finding, apply, check bool, stdout, stderr io.Writer) int {
	plan, err := lint.PlanFixes(findings)
	if err != nil {
		fmt.Fprintf(stderr, "econlint: %v\n", err)
		return 2
	}
	if apply {
		if err := plan.WriteFixes(); err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "econlint: applied %d fix(es) across %d file(s), %d skipped\n",
			plan.Applied, len(plan.Contents), plan.Skipped)
		return 0
	}
	cwd, _ := os.Getwd()
	files := make([]string, 0, len(plan.Contents))
	for path := range plan.Contents {
		files = append(files, path)
	}
	sort.Strings(files)
	for _, path := range files {
		old, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		label := path
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
				label = filepath.ToSlash(rel)
			}
		}
		fmt.Fprint(stdout, lint.UnifiedDiff(label, old, plan.Contents[path]))
	}
	fmt.Fprintf(stderr, "econlint: %d fix(es) across %d file(s) available, %d skipped (dry run)\n",
		plan.Applied, len(plan.Contents), plan.Skipped)
	if check && plan.Applied > 0 {
		fmt.Fprintln(stderr, "econlint: outstanding suggested fixes; run `econlint -fix` and fill in the justifications")
		return 1
	}
	return 0
}

func marshalFindings(findings []jsonFinding) ([]byte, error) {
	if findings == nil {
		findings = []jsonFinding{}
	}
	return json.MarshalIndent(findings, "", "  ")
}

func readBaseline(path string) ([]jsonFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("baseline %s not found; run with -baseline %s -write-baseline to create it", path, path)
		}
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("baseline %s is corrupt (%v); re-run with -write-baseline to regenerate it", path, err)
	}
	return findings, nil
}

// subtractBaseline removes findings matched by the baseline, multiset-
// style: a baseline entry absorbs at most one finding with the same
// (file, analyzer, message), so a regression that duplicates a baselined
// finding still fails the gate.
func subtractBaseline(findings, baseline []jsonFinding) []jsonFinding {
	credit := make(map[string]int, len(baseline))
	for _, f := range baseline {
		credit[f.key()]++
	}
	var fresh []jsonFinding
	for _, f := range findings {
		if k := f.key(); credit[k] > 0 {
			credit[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
