// Econlint runs the project's determinism & correctness analyzers
// (internal/lint) over package patterns and reports findings as
// "file:line: [analyzer] message". It exits 1 when any finding survives
// suppression, 2 on usage or load errors.
//
// Usage:
//
//	econlint [-list] [-only name,name] [-as importpath] [packages]
//
// Patterns default to ./... and support the usual dir and dir/... forms.
// The -as flag checks a single directory under an assumed import path,
// which is how the fixture packages under internal/lint/testdata are
// placed into deterministic packages without living there.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"econcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("econlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asPath := fs.String("as", "", "check a single directory under this assumed import path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "econlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "econlint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	if *asPath != "" {
		if len(patterns) != 1 {
			fmt.Fprintln(stderr, "econlint: -as takes exactly one directory")
			return 2
		}
		pkg, err := loader.LoadDirAs(patterns[0], *asPath)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
		pkgs = []*lint.Package{pkg}
	} else {
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "econlint: %v\n", err)
			return 2
		}
	}

	findings := lint.Check(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "econlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
