// Command oracled is the always-on oracle/control service: a
// fault-hardened HTTP daemon answering operating-point queries for
// ultra-low-power broadcast fleets (see internal/serve for the
// robustness envelope: admission control with deadlines, deterministic
// load-shedding, singleflight dedup, a circuit breaker with a graceful
// degrade ladder, and a crash-safe persistent solution cache).
//
//	oracled -addr :9090 -cache-dir /var/cache/econcast -timeout 5s
//
// Endpoints:
//
//	POST /v1/solve  {"objective":"groupput","n":16,"rho":1e-5,...}
//	GET  /healthz
//	GET  /statz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

import "econcast/internal/serve"

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		cacheDir    = flag.String("cache-dir", "", "persistent solution cache directory (empty = memory only)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		maxSolve    = flag.Duration("max-solve", 5*time.Second, "per-solve watchdog budget")
		maxInflight = flag.Int("max-inflight", 16, "concurrent solve limit")
		queue       = flag.Int("queue", 64, "admission queue depth beyond the inflight limit")
		seed        = flag.Uint64("seed", 1, "seed for the deterministic shed draws")
	)
	flag.Parse()

	solver, err := serve.NewSolver(serve.SolverConfig{CacheDir: *cacheDir, MaxSolve: *maxSolve})
	fatal(err)
	server := serve.NewServer(serve.Config{
		Solver:         solver,
		MaxInflight:    *maxInflight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		Seed:           *seed,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, drain
	// in-flight requests (bounded), then flush and close the persistent
	// cache so the next start recovers instantly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2**timeout)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "oracled: listening on %s (cache-dir=%q)\n", *addr, *cacheDir)
	err = httpSrv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = solver.Close()
		fatal(err)
	}
	fatal(solver.Close())
	fmt.Fprintln(os.Stderr, "oracled: drained and cache flushed")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
}
