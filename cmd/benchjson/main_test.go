package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: econcast/internal/sim
cpu: some CPU
BenchmarkEventLoop-8   	19221097	       128.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkEventLoopNonClique-8   	 5000000	       221.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	econcast/internal/sim	9.876s
pkg: econcast
BenchmarkFig6-8   	       1	1234567890 ns/op
--- BENCH: BenchmarkFig6-8
    bench_test.go:12: note line, not a result
ok  	econcast	2.345s
pkg: econcast/internal/sim
BenchmarkScaleGrid/n=100k/workers=4-8   	       1	19410859407 ns/op	   1087851 events/s
ok  	econcast/internal/sim	19.5s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	ev := results[0]
	if ev.Name != "BenchmarkEventLoop" || ev.Package != "econcast/internal/sim" {
		t.Errorf("first result misattributed: %+v", ev)
	}
	if ev.Iterations != 19221097 || ev.NsPerOp != 128.3 {
		t.Errorf("first result values wrong: %+v", ev)
	}
	if !ev.HasMemStats || ev.AllocsPerOp != 0 || ev.BytesPerOp != 0 {
		t.Errorf("first result mem stats wrong: %+v", ev)
	}
	if ev.GOMAXPROCS != 8 || ev.CPU != "some CPU" {
		t.Errorf("first result GOMAXPROCS/CPU wrong: %+v", ev)
	}
	fig := results[2]
	if fig.Name != "BenchmarkFig6" || fig.Package != "econcast" {
		t.Errorf("third result misattributed: %+v", fig)
	}
	if fig.GOMAXPROCS != 8 {
		t.Errorf("third result GOMAXPROCS wrong: %+v", fig)
	}
	if fig.HasMemStats {
		t.Errorf("no -benchmem columns, yet HasMemStats: %+v", fig)
	}
	scale := results[3]
	if scale.Name != "BenchmarkScaleGrid/n=100k/workers=4" {
		t.Errorf("subbenchmark name wrong: %+v", scale)
	}
	if scale.Metrics["events/s"] != 1087851 {
		t.Errorf("custom metric not captured: %+v", scale)
	}
	if scale.HasMemStats {
		t.Errorf("custom metric misread as mem stats: %+v", scale)
	}
}

func TestParseEmptyInputYieldsEmptyArray(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok \tx\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("want empty non-nil slice, got %#v", results)
	}
}

func TestCPUSuffix(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"BenchmarkFoo-8", 8},
		{"BenchmarkFoo-128", 128},
		{"BenchmarkFoo", -1},
		{"BenchmarkFoo-bar", -1},
	}
	for _, c := range cases {
		if got := cpuSuffix(c.name); got != c.want {
			t.Errorf("cpuSuffix(%q) = %d, want %d", c.name, got, c.want)
		}
	}
}
