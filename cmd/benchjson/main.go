// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark results (ns/op, B/op,
// allocs/op) as a machine-readable artifact and diffs against earlier
// runs stay scriptable.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem ./... | benchjson -o BENCH.json
//
// Lines that are not benchmark results (pkg headers, PASS/ok trailers)
// are skipped; `pkg:` headers attribute each result to its package.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	// GOMAXPROCS is the name's trailing `-N` decoration: the GOMAXPROCS
	// the benchmark ran under. 0 when the name carries no decoration.
	// Multi-core speedup tables key on this column (see EXPERIMENTS.md).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// CPU is the `cpu:` header of the run, attributed like Package, so
	// archived numbers carry the hardware they were measured on.
	CPU        string  `json:"cpu,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// No omitempty on the allocation columns: an explicit 0 is the
	// allocation-free gate's evidence, not an absent measurement —
	// HasMemStats distinguishes "measured 0" from "not measured".
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	HasMemStats bool  `json:"has_mem_stats"`

	// Metrics holds custom b.ReportMetric columns ("events/s": 1.2e6)
	// keyed by their unit string, so throughput-style results survive the
	// conversion alongside the standard time and allocation columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go-test benchmark output. A result line looks like
//
//	BenchmarkEventLoop-8  19221097  128.3 ns/op  0 B/op  0 allocs/op
//
// with the B/op and allocs/op columns present only under -benchmem or
// b.ReportAllocs.
func parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	var results []Result
	pkg, cpu := "", ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid form: name, iterations, value, "ns/op".
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		gomaxprocs := cpuSuffix(name)
		if gomaxprocs > 0 {
			name = name[:strings.LastIndexByte(name, '-')]
		} else {
			gomaxprocs = 0
		}
		res := Result{
			Name:       name,
			Package:    pkg,
			GOMAXPROCS: gomaxprocs,
			CPU:        cpu,
			Iterations: iters,
			NsPerOp:    ns,
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				res.BytesPerOp = int64(v)
				res.HasMemStats = true
			case "allocs/op":
				res.AllocsPerOp = int64(v)
				res.HasMemStats = true
			default:
				// A custom b.ReportMetric column; keep it under its unit.
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if results == nil {
		results = []Result{}
	}
	return results, nil
}

// cpuSuffix extracts the trailing GOMAXPROCS decoration of a benchmark
// name ("BenchmarkFoo-8" -> 8), or -1 when absent.
func cpuSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return -1
	}
	return n
}
