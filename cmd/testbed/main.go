// Command testbed runs the emulated §VIII hardware experiment (TI
// eZ430-RF2500-SEH nodes running EconCast-C) and prints the Fig. 7 /
// Table III / Table IV quantities for one configuration.
//
// Example:
//
//	testbed -n 5 -rho 1e-3 -sigma 0.25 -duration 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"econcast"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of nodes")
		rho      = flag.Float64("rho", 1e-3, "power budget (W); the paper uses 1e-3 and 5e-3")
		sigma    = flag.Float64("sigma", 0.25, "temperature")
		duration = flag.Float64("duration", 20000, "emulated seconds")
		warmup   = flag.Float64("warmup", 4000, "seconds discarded before measuring")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := econcast.SimulateTestbed(econcast.TestbedConfig{
		N: *n, Budget: *rho, Sigma: *sigma,
		Duration: *duration, Warmup: *warmup, Seed: *seed,
	})
	fatal(err)

	// Analytical references at the target budget ("Ideal") and at the mean
	// actual consumption ("Relaxed").
	node := econcast.Node{
		Budget:        *rho,
		ListenPower:   67.08 * econcast.MilliWatt,
		TransmitPower: 56.29 * econcast.MilliWatt,
	}
	nw := make(econcast.Network, *n)
	for i := range nw {
		nw[i] = node
	}
	ideal, err := econcast.Achievable(nw, *sigma, econcast.Groupput)
	fatal(err)
	meanP := 0.0
	for _, p := range res.Power {
		meanP += p
	}
	meanP /= float64(len(res.Power))
	relaxedNode := node
	relaxedNode.Budget = meanP
	nwRelaxed := make(econcast.Network, *n)
	for i := range nwRelaxed {
		nwRelaxed[i] = relaxedNode
	}
	relaxed, err := econcast.Achievable(nwRelaxed, *sigma, econcast.Groupput)
	fatal(err)

	fmt.Printf("emulated %v s, N=%d, rho=%.3g W, sigma=%.2f\n", *duration, *n, *rho, *sigma)
	fmt.Printf("experimental groupput  %.6f over %d packets\n", res.Groupput, res.PacketsSent)
	fmt.Printf("Ideal ratio   T~/T^sigma(rho) = %.1f%%   (paper band 57-77%%)\n",
		100*res.Groupput/ideal.Throughput)
	fmt.Printf("Relaxed ratio T~/T^sigma(P)   = %.1f%%   (paper band 67-81%%)\n",
		100*res.Groupput/relaxed.Throughput)
	fmt.Printf("mean actual power %.4g W (%.1f%% of budget)\n", meanP, 100*meanP/(*rho))
	fmt.Printf("ping-count distribution (Table IV):")
	for k, f := range res.PingHistogram {
		fmt.Printf("  %d:%.1f%%", k, 100*f)
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "testbed: %v\n", err)
		os.Exit(1)
	}
}
