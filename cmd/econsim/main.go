// Command econsim runs one EconCast protocol simulation and prints its
// metrics alongside the analytical predictions.
//
// Example:
//
//	econsim -n 5 -sigma 0.5 -duration 5000 -warm
//	econsim -n 25 -grid -sigma 0.25 -battery 2e-3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"econcast"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of nodes")
		rho      = flag.Float64("rho", 10e-6, "power budget per node (W)")
		listen   = flag.Float64("listen", 500e-6, "listen power L (W)")
		transmit = flag.Float64("transmit", 500e-6, "transmit power X (W)")
		sigma    = flag.Float64("sigma", 0.5, "temperature")
		anyput   = flag.Bool("anyput", false, "maximize anyput instead of groupput")
		nc       = flag.Bool("nc", false, "use the non-capture variant (EconCast-NC)")
		grid     = flag.Bool("grid", false, "square-grid topology instead of a clique")
		duration = flag.Float64("duration", 5000, "simulated seconds")
		warmup   = flag.Float64("warmup", 1000, "seconds discarded before measuring")
		seed     = flag.Uint64("seed", 1, "random seed")
		netFile  = flag.String("network", "", "JSON file with heterogeneous node parameters (overrides -n/-rho/-listen/-transmit)")
		warm     = flag.Bool("warm", false, "warm-start multipliers from the (P4) solution")
		battery  = flag.Float64("battery", 0, "initial battery with hard floor (J); 0 = idealized")
	)
	flag.Parse()

	mode := econcast.Groupput
	if *anyput {
		mode = econcast.Anyput
	}
	variant := econcast.Capture
	if *nc {
		variant = econcast.NonCapture
	}
	nw := econcast.Homogeneous(*n, *rho, *listen, *transmit)
	if *netFile != "" {
		data, err := os.ReadFile(*netFile)
		fatal(err)
		nw = nil
		fatal(json.Unmarshal(data, &nw))
		*n = len(nw)
	}

	cfg := econcast.SimConfig{
		Network:      nw,
		Mode:         mode,
		Variant:      variant,
		Sigma:        *sigma,
		Duration:     *duration,
		Warmup:       *warmup,
		Seed:         *seed,
		BatteryFloor: *battery,
	}
	if *grid {
		side := int(math.Round(math.Sqrt(float64(*n))))
		if side*side != *n {
			fatal(fmt.Errorf("-grid needs a square n, got %d", *n))
		}
		cfg.Neighbors = econcast.GridNeighbors(side, side)
	}

	ach, err := econcast.Achievable(nw, *sigma, mode)
	fatal(err)
	if *warm {
		cfg.WarmEta = ach.Eta
	}

	res, err := econcast.Simulate(cfg)
	fatal(err)

	fmt.Printf("simulated %v s (measured %v s), seed %d\n", *duration, *duration-*warmup, *seed)
	fmt.Printf("groupput %.6f   anyput %.6f\n", res.Groupput, res.Anyput)
	if !*grid {
		target := res.Groupput
		if mode == econcast.Anyput {
			target = res.Anyput
		}
		fmt.Printf("analytic T^sigma %.6f (sim/analytic %.3f)\n",
			ach.Throughput, target/ach.Throughput)
	}
	fmt.Printf("packets sent %d, delivered %d\n", res.PacketsSent, res.PacketsDelivered)
	if res.BurstSamples > 0 {
		fmt.Printf("mean burst %.2f packets over %d holds (analytic %.3g)\n",
			res.MeanBurstLength, res.BurstSamples, ach.BurstLength)
	}
	if res.LatencyN > 0 {
		fmt.Printf("latency mean %.2f s, p99 %.2f s (%d samples)\n",
			res.MeanLatency, res.P99Latency, res.LatencyN)
	}
	for i, p := range res.Power {
		fmt.Printf("node %d: power %.3g W (budget %.3g W), eta %.4g /W\n",
			i, p, nw[i].Budget, res.Eta[i])
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "econsim: %v\n", err)
		os.Exit(1)
	}
}
