// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3 [-quick] [-seed 1]
//	experiments -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"econcast/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced samples/durations for a fast pass")
		seed  = flag.Uint64("seed", 1, "base random seed")
		csv   = flag.String("csv", "", "directory to also write each table as a CSV file")
		svg   = flag.String("svg", "", "directory to also render figure tables as SVG charts")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	for _, dir := range []string{*csv, *svg} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	switch {
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e, opts, *csv, *svg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case *run != "":
		e, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
			os.Exit(2)
		}
		if err := runOne(e, opts, *csv, *svg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, opts experiments.Options, csvDir, svgDir string) error {
	fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
	tables, err := e.Run(opts)
	if err != nil {
		return err
	}
	for i, t := range tables {
		fmt.Println(t.Format())
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", e.ID, i)
			if err := os.WriteFile(filepath.Join(csvDir, name),
				[]byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
		if svgDir != "" && t.Chart != nil {
			doc, err := t.Chart.SVG()
			if err != nil {
				return fmt.Errorf("%s chart: %w", e.ID, err)
			}
			name := fmt.Sprintf("%s_%d.svg", e.ID, i)
			if err := os.WriteFile(filepath.Join(svgDir, name),
				[]byte(doc), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
