// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3 [-quick] [-seed 1] [-parallel 4]
//	experiments -all [-quick] [-parallel 4]
//
// -parallel bounds the sweep worker pool used inside the
// simulation-heavy experiments (0 = GOMAXPROCS). Output is byte-identical
// at any worker count. With -all, failures no longer abort the batch:
// every experiment runs, all errors are reported at the end, and the exit
// status is nonzero if any failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"econcast/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "reduced samples/durations for a fast pass")
		seed     = flag.Uint64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "sweep workers per experiment (0 = GOMAXPROCS); any value gives identical output")
		csv      = flag.String("csv", "", "directory to also write each table as a CSV file")
		svg      = flag.String("svg", "", "directory to also render figure tables as SVG charts")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *parallel}
	for _, dir := range []string{*csv, *svg} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	switch {
	case *all:
		// Keep going after a failure: one broken experiment must not cost
		// the batch. Collect every error, report them together, exit nonzero.
		type failure struct {
			id  string
			err error
		}
		var failures []failure
		for _, e := range experiments.All() {
			if err := runOne(e, opts, *csv, *svg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v (continuing)\n", e.ID, err)
				failures = append(failures, failure{id: e.ID, err: err})
			}
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed:\n", len(failures), len(experiments.All()))
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", f.id, f.err)
			}
			os.Exit(1)
		}
	case *run != "":
		e, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
			os.Exit(2)
		}
		if err := runOne(e, opts, *csv, *svg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, opts experiments.Options, csvDir, svgDir string) error {
	fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
	tables, err := e.Run(opts)
	if err != nil {
		return err
	}
	for i, t := range tables {
		fmt.Println(t.Format())
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", e.ID, i)
			if err := os.WriteFile(filepath.Join(csvDir, name),
				[]byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
		if svgDir != "" && t.Chart != nil {
			doc, err := t.Chart.SVG()
			if err != nil {
				return fmt.Errorf("%s chart: %w", e.ID, err)
			}
			name := fmt.Sprintf("%s_%d.svg", e.ID, i)
			if err := os.WriteFile(filepath.Join(svgDir, name),
				[]byte(doc), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
