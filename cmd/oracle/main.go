// Command oracle computes the paper's offline-optimal throughput for a
// homogeneous network: the oracle groupput (P2), the oracle anyput (P3),
// the achievable T^sigma (P4), and optionally the non-clique grid bounds
// and the explicit Lemma 1 schedule.
//
// The LP-backed objectives (groupput, anyput, grid bounds) route through
// the same internal/serve solver path as the oracled service: the same
// validation, the same watchdog timeout, and — with -cache-dir — the
// same crash-safe persistent cache, so batch runs and the daemon share
// one solution store and bitwise-identical answers.
//
// Example:
//
//	oracle -n 5 -rho 10e-6 -listen 500e-6 -transmit 500e-6 -sigma 0.25
//	oracle -n 25 -grid -cache-dir /var/cache/econcast
//	oracle -n 3 -schedule -timeout 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/serve"
	"econcast/internal/statespace"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of nodes")
		rho      = flag.Float64("rho", 10e-6, "power budget per node (W)")
		listen   = flag.Float64("listen", 500e-6, "listen power L (W)")
		transmit = flag.Float64("transmit", 500e-6, "transmit power X (W)")
		sigma    = flag.Float64("sigma", 0.25, "temperature for the achievable T^sigma")
		grid     = flag.Bool("grid", false, "also compute square-grid non-clique bounds (n must be a square)")
		schedule = flag.Bool("schedule", false, "build and validate the Lemma 1 periodic schedule")
		mixing   = flag.Bool("mixing", false, "Appendix D mixing analysis at the optimal multipliers (n <= 8)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-solve watchdog budget")
		cacheDir = flag.String("cache-dir", "", "persistent solution cache directory (shared with oracled; empty = memory only)")
	)
	flag.Parse()

	solver, err := serve.NewSolver(serve.SolverConfig{CacheDir: *cacheDir, MaxSolve: *timeout})
	fatal(err)
	defer func() { _ = solver.Close() }()
	ctx := context.Background()
	base := serve.Request{N: *n, Rho: *rho, Listen: *listen, Transmit: *transmit}

	g := solve(ctx, solver, base, serve.ObjGroupput, nil)
	a := solve(ctx, solver, base, serve.ObjAnyput, nil)

	nw := econcast.Homogeneous(*n, *rho, *listen, *transmit)
	ach, err := econcast.Achievable(nw, *sigma, econcast.Groupput)
	fatal(err)
	achA, err := econcast.Achievable(nw, *sigma, econcast.Anyput)
	fatal(err)

	fmt.Printf("network: N=%d rho=%.3gW L=%.3gW X=%.3gW\n", *n, *rho, *listen, *transmit)
	fmt.Printf("oracle groupput T*_g        = %.6f  (max %d, %s)\n", g.Throughput, *n-1, g.Provenance)
	fmt.Printf("oracle anyput   T*_a        = %.6f  (max 1, %s)\n", a.Throughput, a.Provenance)
	fmt.Printf("achievable T^%.2f_g (P4)    = %.6f  (ratio %.3f, burst %.3g)\n",
		*sigma, ach.Throughput, ach.Throughput/g.Throughput, ach.BurstLength)
	fmt.Printf("achievable T^%.2f_a (P4)    = %.6f  (ratio %.3f)\n",
		*sigma, achA.Throughput, achA.Throughput/a.Throughput)
	fmt.Printf("per-node: alpha*=%.6f beta*=%.6f (oracle), alpha=%.6f beta=%.6f (P4)\n",
		g.Alpha[0], g.Beta[0], ach.Alpha[0], ach.Beta[0])

	if *grid {
		side := int(math.Round(math.Sqrt(float64(*n))))
		if side*side != *n {
			fatal(fmt.Errorf("-grid needs a square n, got %d", *n))
		}
		b := solve(ctx, solver, base, serve.ObjBounds, &serve.TopoSpec{Kind: "grid", Rows: side, Cols: side})
		fmt.Printf("grid %dx%d: T*_nc in [%.6f, %.6f] (%s)\n",
			side, side, b.Throughput, b.Upper.Throughput, b.Provenance)
	}

	if *mixing {
		if *n > 8 {
			fatal(fmt.Errorf("-mixing supports n <= 8, got %d", *n))
		}
		nwm := model.Homogeneous(*n, *rho, *listen, *transmit)
		sp, err := statespace.Enumerate(nwm)
		fatal(err)
		mix, err := sp.MixingAnalysis(ach.Eta, *sigma, model.Groupput)
		fatal(err)
		fmt.Printf("mixing at eta* (sigma=%.2f): SLEM %.6f, spectral gap %.3g, pi_min %.3g (bound %.3g)\n",
			*sigma, mix.SLEM, mix.SpectralGap, mix.PiMin, mix.PiMinBound)
		if !math.IsNaN(mix.Conductance) {
			fmt.Printf("conductance %.4g; Cheeger bound phi^2/2 = %.3g <= gap\n",
				mix.Conductance, mix.Conductance*mix.Conductance/2)
		}
	}

	if *schedule {
		sol := &oracle.Solution{Throughput: g.Throughput, Alpha: g.Alpha, Beta: g.Beta}
		alpha, beta := oracle.RatApproxSolution(sol, 10000)
		nwm := model.Homogeneous(*n, *rho, *listen, *transmit)
		s, err := oracle.BuildSchedule(nwm, alpha, beta)
		fatal(err)
		fatal(s.Validate(nwm))
		gp, _ := s.Groupput().Float64()
		fmt.Printf("Lemma 1 schedule: period %d slots, realized groupput %.6f (LP %.6f)\n",
			s.Period, gp, g.Throughput)
	}
}

// solve routes one objective through the serving solver.
func solve(ctx context.Context, solver *serve.Solver, base serve.Request, objective string, topo *serve.TopoSpec) *serve.Response {
	req := base
	req.Objective = objective
	req.Topology = topo
	resp, err := solver.Solve(ctx, &req)
	fatal(err)
	return resp
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
		os.Exit(1)
	}
}
