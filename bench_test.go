package econcast

// bench_test.go holds one benchmark per table and figure of the paper's
// evaluation, each running the corresponding experiment in quick mode (the
// full-fidelity versions run through cmd/experiments). Benchmarking them
// keeps the whole reproduction pipeline exercised by
// `go test -bench=. -benchmem` and reports how expensive each artifact is
// to regenerate.

import (
	"testing"

	"econcast/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Options{Quick: true, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkTable2 regenerates Table II (optimal listen/transmit split).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig2 regenerates Fig. 2 (throughput ratio vs heterogeneity).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Fig. 3 (ratio vs X/L with baselines).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig. 4 (burst length vs sigma).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5 (latency distributions).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (grid-topology groupput).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7 (emulated-testbed ratios).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable3 regenerates Table III (testbed vs Panda).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV (ping-count distribution).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTextClaims regenerates the §IV closed forms and the §VII-C
// 6x/17x Panda comparison.
func BenchmarkTextClaims(b *testing.B) { benchExperiment(b, "text-homog") }

// --- Ablation benches for the design choices called out in DESIGN.md ---

// BenchmarkAblationOracleVsAchievable measures the analytical pipeline:
// (P2) LP + (P4) dual solve for one 5-node network.
func BenchmarkAblationOracleVsAchievable(b *testing.B) {
	nw := Homogeneous(5, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
	for i := 0; i < b.N; i++ {
		if _, err := OracleGroupput(nw); err != nil {
			b.Fatal(err)
		}
		if _, err := Achievable(nw, 0.25, Groupput); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimulatorThroughput measures simulated seconds per
// wall-clock second for the discrete-event engine on the reference clique.
func BenchmarkAblationSimulatorThroughput(b *testing.B) {
	nw := Homogeneous(5, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
	ach, err := Achievable(nw, 0.5, Groupput)
	if err != nil {
		b.Fatal(err)
	}
	duration := float64(b.N)
	warmup := duration / 10
	if _, err := Simulate(SimConfig{
		Network: nw, Mode: Groupput, Sigma: 0.5,
		Duration: duration, Warmup: warmup, Seed: 1, WarmEta: ach.Eta,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblations regenerates the design-choice ablation tables.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// BenchmarkDiscovery regenerates the neighbor-discovery/gossip extension.
func BenchmarkDiscovery(b *testing.B) { benchExperiment(b, "discovery") }

// BenchmarkTopologies regenerates the topology-family extension.
func BenchmarkTopologies(b *testing.B) { benchExperiment(b, "topologies") }

// BenchmarkConvergence regenerates the delta/tau convergence study.
func BenchmarkConvergence(b *testing.B) { benchExperiment(b, "convergence") }

// BenchmarkHarvesting regenerates the time-varying-harvest study.
func BenchmarkHarvesting(b *testing.B) { benchExperiment(b, "harvesting") }

// BenchmarkChurn regenerates the node-churn adaptation study.
func BenchmarkChurn(b *testing.B) { benchExperiment(b, "churn") }
