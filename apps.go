package econcast

import (
	"econcast/internal/apps"
	"econcast/internal/oracle"
	"econcast/internal/topology"
)

// OracleGroupputExact computes the exact oracle groupput for a non-clique
// topology by time-sharing over transmitter configurations — a result
// beyond the paper's §IV-C bounds, which it always brackets. Limited to 16
// nodes (the configuration LP enumerates all 2^N transmitter sets).
func OracleGroupputExact(nw Network, neighbors [][]int) (*OracleSolution, error) {
	topo := topology.New(len(nw))
	for i, ns := range neighbors {
		for _, j := range ns {
			topo.AddEdge(i, j)
		}
	}
	s, err := oracle.GroupputNonCliqueExact(nw.toModel(), topo)
	if err != nil {
		return nil, err
	}
	return fromOracle(s), nil
}

// Discovery tracks pairwise neighbor discovery over a simulation's
// delivery stream: attach its OnDeliver method to SimConfig.OnDeliver.
// Times are relative to the start passed to NewDiscovery.
type Discovery struct{ inner *apps.Discovery }

// NewDiscovery returns a tracker for n nodes, measuring from start.
func NewDiscovery(n int, start float64) *Discovery {
	return &Discovery{inner: apps.NewDiscovery(n, start)}
}

// OnDeliver records one reception.
func (d *Discovery) OnDeliver(tx, rx int, now float64) { d.inner.OnDeliver(tx, rx, now) }

// Pairs returns how many ordered pairs have met, out of n*(n-1).
func (d *Discovery) Pairs() (discovered, total int) { return d.inner.Pairs() }

// FullDiscoveryTime returns when the last pair met; ok is false while some
// pair has not.
func (d *Discovery) FullDiscoveryTime() (t float64, ok bool) { return d.inner.FullDiscoveryTime() }

// MeanPairwise returns the mean pairwise discovery time over met pairs.
func (d *Discovery) MeanPairwise() (float64, error) { return d.inner.MeanPairwise() }

// Gossip spreads rumors store-and-forward over the delivery stream: every
// reception merges the transmitter's rumor set into the receiver's.
type Gossip struct{ inner *apps.Gossip }

// NewGossip returns a gossip tracker for n nodes (up to 64 rumors).
func NewGossip(n int) *Gossip { return &Gossip{inner: apps.NewGossip(n)} }

// Inject starts a rumor at a node and returns its id.
func (g *Gossip) Inject(node int, now float64) (int, error) { return g.inner.Inject(node, now) }

// OnDeliver records one reception.
func (g *Gossip) OnDeliver(tx, rx int, now float64) { g.inner.OnDeliver(tx, rx, now) }

// Coverage returns how many nodes hold the rumor.
func (g *Gossip) Coverage(rumor int) int { return g.inner.Coverage(rumor) }

// SpreadTime returns the injection-to-full-coverage time; ok is false
// while coverage is partial.
func (g *Gossip) SpreadTime(rumor int) (t float64, ok bool) { return g.inner.SpreadTime(rumor) }
